//! The cluster wire protocol: compact length-prefixed frames with a
//! CRC-32 trailer and a strict, never-panicking incremental decoder.
//!
//! ## Request frame (client → node / router)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 1 | magic `0xC5` |
//! | 1 | 1 | version (`0x01`) |
//! | 2 | 1 | kind: `1` report, `2` drain, `3` shutdown |
//! | 3 | 1 | flags (must be `0`) |
//! | 4 | 4 | sequence number, u32 LE |
//! | 8 | 6 | source MAC |
//! | 14 | 4 | payload length, u32 LE (≤ [`MAX_PAYLOAD`]) |
//! | 18 | n | payload (raw 802.11 MPDU bytes for reports) |
//! | 18+n | 4 | CRC-32 (IEEE) over bytes `0..18+n`, u32 LE |
//!
//! ## Response frame (node / router → client)
//!
//! Same shape without the MAC: magic `0xC6`, version, echoed kind,
//! a status byte (`0` ack, `1` busy, `2` drop, `3` reject), echoed
//! sequence number, payload length, payload, CRC. Reports are only
//! answered on failure (`BUSY`/`DROP`/`REJECT`) — the happy path is
//! silent. `DRAIN`/`SHUTDOWN` are acked with an encoded
//! [`DrainReply`] payload.
//!
//! The decoders validate magic, version, kind, flags and the length
//! prefix *before* trusting the length, and check the CRC before
//! handing a frame up. Any error poisons the decoder — the transport
//! must tear the connection down, which is exactly what the node and
//! router do.

use deepcsi_frame::MacAddr;
use deepcsi_serve::crc32;
use std::fmt;

/// Hard cap on a frame's payload, bytes. A VHT compressed beamforming
/// MPDU is a few KiB; anything near this cap is hostile.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Request magic byte.
const REQ_MAGIC: u8 = 0xC5;
/// Response magic byte.
const RESP_MAGIC: u8 = 0xC6;
/// Protocol version.
const VERSION: u8 = 0x01;
/// Request header length (everything before the payload).
const REQ_HEADER: usize = 18;
/// Response header length (everything before the payload).
const RESP_HEADER: usize = 12;
/// CRC trailer length.
const TRAILER: usize = 4;

/// What a request frame asks the receiver to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Ingest one beamforming report (payload = raw MPDU bytes).
    Report,
    /// Flush every queued report, reply with stats + decisions.
    Drain,
    /// Drain, reply, then stop serving.
    Shutdown,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Report => 1,
            FrameKind::Drain => 2,
            FrameKind::Shutdown => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, CodecError> {
        match b {
            1 => Ok(FrameKind::Report),
            2 => Ok(FrameKind::Drain),
            3 => Ok(FrameKind::Shutdown),
            other => Err(CodecError::BadKind(other)),
        }
    }
}

/// A response frame's status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// The request succeeded (drain/shutdown replies carry a payload).
    Ack,
    /// A router-side per-node queue was full under `DropNewest`; the
    /// report was not forwarded.
    Busy,
    /// The node's engine dropped the report under `DropNewest`
    /// backpressure.
    Drop,
    /// The payload did not decode as a beamforming report (or the
    /// request itself was malformed).
    Reject,
}

impl ResponseStatus {
    fn to_u8(self) -> u8 {
        match self {
            ResponseStatus::Ack => 0,
            ResponseStatus::Busy => 1,
            ResponseStatus::Drop => 2,
            ResponseStatus::Reject => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, CodecError> {
        match b {
            0 => Ok(ResponseStatus::Ack),
            1 => Ok(ResponseStatus::Busy),
            2 => Ok(ResponseStatus::Drop),
            3 => Ok(ResponseStatus::Reject),
            other => Err(CodecError::BadStatus(other)),
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// What the sender asks for.
    pub kind: FrameKind,
    /// Sender-assigned sequence number, echoed in responses.
    pub seq: u32,
    /// The report's source MAC — the router's shard key. Zero for
    /// drain/shutdown.
    pub mac: MacAddr,
    /// Raw MPDU bytes for reports; empty otherwise.
    pub payload: Vec<u8>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The request kind this answers.
    pub kind: FrameKind,
    /// The outcome.
    pub status: ResponseStatus,
    /// The request's sequence number.
    pub seq: u32,
    /// Encoded [`DrainReply`] for acked drains/shutdowns; empty
    /// otherwise.
    pub payload: Vec<u8>,
}

/// Why a frame failed to decode. Every error is terminal for the
/// connection that produced it.
#[derive(Debug)]
pub enum CodecError {
    /// The first byte was not the expected magic.
    BadMagic(u8),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Unknown response status.
    BadStatus(u8),
    /// Non-zero flags (reserved).
    BadFlags(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(usize),
    /// The CRC trailer does not match the frame bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried in the trailer.
        found: u32,
    },
    /// A structured payload (drain reply) was malformed.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            CodecError::BadStatus(s) => write!(f, "unknown response status {s}"),
            CodecError::BadFlags(x) => write!(f, "reserved flags set: 0x{x:02x}"),
            CodecError::Oversize(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            CodecError::BadCrc { expected, found } => {
                write!(
                    f,
                    "CRC mismatch: computed {expected:#010x}, frame says {found:#010x}"
                )
            }
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a request frame (header + payload + CRC trailer).
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(REQ_HEADER + frame.payload.len() + TRAILER);
    out.push(REQ_MAGIC);
    out.push(VERSION);
    out.push(frame.kind.to_u8());
    out.push(0); // flags
    put_u32(&mut out, frame.seq);
    out.extend_from_slice(&frame.mac.octets());
    put_u32(&mut out, frame.payload.len() as u32);
    out.extend_from_slice(&frame.payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Encodes a response frame (header + payload + CRC trailer).
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(RESP_HEADER + frame.payload.len() + TRAILER);
    out.push(RESP_MAGIC);
    out.push(VERSION);
    out.push(frame.kind.to_u8());
    out.push(frame.status.to_u8());
    put_u32(&mut out, frame.seq);
    put_u32(&mut out, frame.payload.len() as u32);
    out.extend_from_slice(&frame.payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Shared incremental framing: buffers bytes, validates the fixed
/// header fields *before* trusting the length prefix, checks the CRC,
/// and yields `(header bytes, payload)` slices to the typed decoders.
struct Framer {
    buf: Vec<u8>,
    /// Bytes already consumed from the front of `buf` (compacted
    /// lazily so steady streaming is amortized O(1) per byte).
    consumed: usize,
    poisoned: bool,
}

impl Framer {
    fn new() -> Self {
        Framer {
            buf: Vec::new(),
            consumed: 0,
            poisoned: false,
        }
    }

    fn push(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.consumed..]
    }

    fn poison<T>(&mut self, e: CodecError) -> Result<T, CodecError> {
        self.poisoned = true;
        Err(e)
    }

    /// Tries to cut one complete frame off the front of the buffer.
    /// Returns the frame's bytes (header + payload, CRC already
    /// verified and stripped).
    fn next_frame(
        &mut self,
        magic: u8,
        header_len: usize,
        len_offset: usize,
    ) -> Result<Option<Vec<u8>>, CodecError> {
        if self.poisoned {
            return Ok(None);
        }
        let pending = self.pending();
        if pending.is_empty() {
            return Ok(None);
        }
        // Validate every fixed byte we *have* so garbage fails fast,
        // before a lying length prefix can make us wait forever.
        if pending[0] != magic {
            let b = pending[0];
            return self.poison(CodecError::BadMagic(b));
        }
        if pending.len() >= 2 && pending[1] != VERSION {
            let v = pending[1];
            return self.poison(CodecError::BadVersion(v));
        }
        if pending.len() >= 3 {
            if let Err(e) = FrameKind::from_u8(pending[2]) {
                return self.poison(e);
            }
        }
        if pending.len() < header_len {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            pending[len_offset..len_offset + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        if len > MAX_PAYLOAD {
            return self.poison(CodecError::Oversize(len));
        }
        let total = header_len + len + TRAILER;
        if pending.len() < total {
            return Ok(None);
        }
        let body = &pending[..total - TRAILER];
        let expected = crc32(body);
        let found = u32::from_le_bytes(
            pending[total - TRAILER..total]
                .try_into()
                .expect("4-byte slice"),
        );
        if expected != found {
            return self.poison(CodecError::BadCrc { expected, found });
        }
        let frame = body.to_vec();
        self.consumed += total;
        Ok(Some(frame))
    }
}

/// Incremental decoder for request frames (the node/router side).
///
/// Push raw socket bytes in with [`RequestDecoder::push`], pull
/// complete frames out with [`RequestDecoder::try_next`]. The first error
/// poisons the decoder: every later call returns `Ok(None)`, and the
/// owning connection must be torn down.
pub struct RequestDecoder {
    framer: Framer,
}

impl Default for RequestDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        RequestDecoder {
            framer: Framer::new(),
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.framer.push(bytes);
    }

    /// Decodes the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] is terminal: the decoder is poisoned and the
    /// connection must close.
    pub fn try_next(&mut self) -> Result<Option<RequestFrame>, CodecError> {
        let Some(frame) = self.framer.next_frame(REQ_MAGIC, REQ_HEADER, 14)? else {
            return Ok(None);
        };
        let kind = FrameKind::from_u8(frame[2])?;
        if frame[3] != 0 {
            return self.framer.poison(CodecError::BadFlags(frame[3]));
        }
        let seq = u32::from_le_bytes(frame[4..8].try_into().expect("seq"));
        let mac = MacAddr::new(frame[8..14].try_into().expect("mac"));
        Ok(Some(RequestFrame {
            kind,
            seq,
            mac,
            payload: frame[REQ_HEADER..].to_vec(),
        }))
    }
}

/// Incremental decoder for response frames (the client side). Same
/// contract as [`RequestDecoder`].
pub struct ResponseDecoder {
    framer: Framer,
}

impl Default for ResponseDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        ResponseDecoder {
            framer: Framer::new(),
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.framer.push(bytes);
    }

    /// Decodes the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] is terminal: the decoder is poisoned and the
    /// connection must close.
    pub fn try_next(&mut self) -> Result<Option<ResponseFrame>, CodecError> {
        let Some(frame) = self.framer.next_frame(RESP_MAGIC, RESP_HEADER, 8)? else {
            return Ok(None);
        };
        let kind = FrameKind::from_u8(frame[2])?;
        let status = match ResponseStatus::from_u8(frame[3]) {
            Ok(s) => s,
            Err(e) => return self.framer.poison(e),
        };
        let seq = u32::from_le_bytes(frame[4..8].try_into().expect("seq"));
        Ok(Some(ResponseFrame {
            kind,
            status,
            seq,
            payload: frame[RESP_HEADER..].to_vec(),
        }))
    }
}

// ---------------------------------------------------------------------
// Drain-reply payload
// ---------------------------------------------------------------------

/// The engine counters a drain reply carries — the cross-process
/// subset of [`deepcsi_serve::EngineStats`], plus the tier's own
/// `busy` count. Merging replies sums field-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Frames handed to the engine(s).
    pub ingested: u64,
    /// Reports enqueued to shard queues.
    pub enqueued: u64,
    /// Reports dropped by engine backpressure.
    pub dropped: u64,
    /// Frames that failed to decode as beamforming reports.
    pub decode_errors: u64,
    /// Reports rejected before inference (incompatible dimensions).
    pub rejected: u64,
    /// Reports classified end to end.
    pub classified: u64,
    /// Live per-device policy states.
    pub device_states: u64,
    /// Device states evicted by the per-shard capacity cap.
    pub devices_evicted: u64,
    /// Evicted streams that returned and re-warmed.
    pub devices_rewarmed: u64,
    /// Reports refused with `BUSY` by a router queue.
    pub busy: u64,
}

impl WireStats {
    /// Field-wise sum, for merging per-node replies.
    pub fn merge(&mut self, other: &WireStats) {
        self.ingested += other.ingested;
        self.enqueued += other.enqueued;
        self.dropped += other.dropped;
        self.decode_errors += other.decode_errors;
        self.rejected += other.rejected;
        self.classified += other.classified;
        self.device_states += other.device_states;
        self.devices_evicted += other.devices_evicted;
        self.devices_rewarmed += other.devices_rewarmed;
        self.busy += other.busy;
    }

    /// The cross-process subset of an [`deepcsi_serve::EngineStats`].
    pub fn from_engine(stats: &deepcsi_serve::EngineStats) -> WireStats {
        WireStats {
            ingested: stats.ingested,
            enqueued: stats.enqueued,
            dropped: stats.dropped,
            decode_errors: stats.decode_errors,
            rejected: stats.rejected,
            classified: stats.classified,
            device_states: stats.device_states,
            devices_evicted: stats.devices_evicted,
            devices_rewarmed: stats.devices_rewarmed,
            busy: 0,
        }
    }
}

/// One device's verdict as carried in a drain reply — the wire image
/// of a [`deepcsi_serve::DeviceDecision`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireDecision {
    /// The stream's source MAC.
    pub mac: MacAddr,
    /// `"accept"` / `"reject"` / `"unknown"` — the registry verdict.
    pub verdict: deepcsi_serve::Verdict,
    /// Classified reports before the verdict first left `Unknown`.
    pub decided_at: Option<u64>,
    /// The windowed decision, if ≥ 1 report classified:
    /// `(module, vote_fraction, confidence_ema, observations)`.
    pub decision: Option<(u32, f64, f64, u64)>,
}

impl WireDecision {
    /// Converts an engine decision to its wire image.
    pub fn from_engine(d: &deepcsi_serve::DeviceDecision) -> WireDecision {
        WireDecision {
            mac: d.source,
            verdict: d.verdict,
            decided_at: d.decided_at,
            decision: d.decision.as_ref().map(|w| {
                (
                    w.module as u32,
                    w.vote_fraction,
                    w.confidence_ema,
                    w.observations,
                )
            }),
        }
    }
}

/// Everything a drain (or shutdown) reply carries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrainReply {
    /// Merged engine + tier counters.
    pub stats: WireStats,
    /// Per-device verdicts, sorted by MAC.
    pub decisions: Vec<WireDecision>,
}

impl DrainReply {
    /// Merges another node's reply into this one: counters sum,
    /// decision lists concatenate and re-sort by MAC.
    ///
    /// Sharding partitions the *streams*, but every node also reports
    /// a placeholder row (`Unknown`, no decision) for registered
    /// devices it never saw; duplicates collapse to the row that
    /// carries evidence, so the merged list is exactly what one
    /// process would report.
    pub fn merge(&mut self, other: DrainReply) {
        self.stats.merge(&other.stats);
        self.decisions.extend(other.decisions);
        self.decisions.sort_by_key(|d| d.mac.octets());
        self.decisions.dedup_by(|later, kept| {
            if later.mac != kept.mac {
                return false;
            }
            if kept.decision.is_none() && later.decision.is_some() {
                std::mem::swap(kept, later);
            }
            true
        });
    }
}

fn verdict_to_u8(v: deepcsi_serve::Verdict) -> u8 {
    match v {
        deepcsi_serve::Verdict::Accept => 0,
        deepcsi_serve::Verdict::Reject => 1,
        deepcsi_serve::Verdict::Unknown => 2,
    }
}

fn verdict_from_u8(b: u8) -> Result<deepcsi_serve::Verdict, CodecError> {
    match b {
        0 => Ok(deepcsi_serve::Verdict::Accept),
        1 => Ok(deepcsi_serve::Verdict::Reject),
        2 => Ok(deepcsi_serve::Verdict::Unknown),
        _ => Err(CodecError::Malformed("verdict tag")),
    }
}

/// Encodes a [`DrainReply`] as a response payload.
pub fn encode_drain_reply(reply: &DrainReply) -> Vec<u8> {
    let mut out = Vec::new();
    for v in [
        reply.stats.ingested,
        reply.stats.enqueued,
        reply.stats.dropped,
        reply.stats.decode_errors,
        reply.stats.rejected,
        reply.stats.classified,
        reply.stats.device_states,
        reply.stats.devices_evicted,
        reply.stats.devices_rewarmed,
        reply.stats.busy,
    ] {
        put_u64(&mut out, v);
    }
    put_u32(&mut out, reply.decisions.len() as u32);
    for d in &reply.decisions {
        out.extend_from_slice(&d.mac.octets());
        out.push(verdict_to_u8(d.verdict));
        match d.decided_at {
            Some(n) => {
                out.push(1);
                put_u64(&mut out, n);
            }
            None => out.push(0),
        }
        match &d.decision {
            Some((module, vote, ema, obs)) => {
                out.push(1);
                put_u32(&mut out, *module);
                put_f64(&mut out, *vote);
                put_f64(&mut out, *ema);
                put_u64(&mut out, *obs);
            }
            None => out.push(0),
        }
    }
    out
}

/// Strict little reader over a drain-reply payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Malformed("truncated drain reply"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }
}

/// Decodes a [`DrainReply`] payload.
///
/// # Errors
///
/// [`CodecError::Malformed`] on truncation, bad tags, a lying count,
/// or trailing bytes.
pub fn decode_drain_reply(payload: &[u8]) -> Result<DrainReply, CodecError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let stats = WireStats {
        ingested: r.u64()?,
        enqueued: r.u64()?,
        dropped: r.u64()?,
        decode_errors: r.u64()?,
        rejected: r.u64()?,
        classified: r.u64()?,
        device_states: r.u64()?,
        devices_evicted: r.u64()?,
        devices_rewarmed: r.u64()?,
        busy: r.u64()?,
    };
    let count = r.u32()? as usize;
    // 9 bytes (MAC + verdict + two None tags) is the smallest
    // possible per-device record; a count that cannot fit in the
    // remaining bytes is lying.
    if count > (payload.len() - r.pos) / 9 {
        return Err(CodecError::Malformed("decision count exceeds payload"));
    }
    let mut decisions = Vec::with_capacity(count);
    for _ in 0..count {
        let mac = MacAddr::new(r.take(6)?.try_into().expect("mac"));
        let verdict = verdict_from_u8(r.u8()?)?;
        let decided_at = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return Err(CodecError::Malformed("decided_at tag")),
        };
        let decision = match r.u8()? {
            0 => None,
            1 => Some((r.u32()?, r.f64()?, r.f64()?, r.u64()?)),
            _ => return Err(CodecError::Malformed("decision tag")),
        };
        decisions.push(WireDecision {
            mac,
            verdict,
            decided_at,
            decision,
        });
    }
    if r.pos != payload.len() {
        return Err(CodecError::Malformed("trailing bytes"));
    }
    Ok(DrainReply { stats, decisions })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seq: u32) -> RequestFrame {
        RequestFrame {
            kind: FrameKind::Report,
            seq,
            mac: MacAddr::station(seq as u64),
            payload: vec![seq as u8; 37],
        }
    }

    #[test]
    fn request_round_trip_and_pipelining() {
        let frames: Vec<RequestFrame> = (0..5).map(report).collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_request(f));
        }
        // Feed one byte at a time: the decoder must reassemble across
        // arbitrary fragmentation.
        let mut dec = RequestDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.push(&[*b]);
            while let Some(f) = dec.try_next().expect("clean stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn response_round_trip() {
        let frame = ResponseFrame {
            kind: FrameKind::Drain,
            status: ResponseStatus::Ack,
            seq: 7,
            payload: encode_drain_reply(&DrainReply::default()),
        };
        let mut dec = ResponseDecoder::new();
        dec.push(&encode_response(&frame));
        assert_eq!(dec.try_next().expect("clean").expect("one frame"), frame);
        assert!(dec.try_next().expect("clean").is_none());
    }

    #[test]
    fn bad_magic_poisons() {
        let mut dec = RequestDecoder::new();
        dec.push(&[0x00]);
        assert!(matches!(dec.try_next(), Err(CodecError::BadMagic(0))));
        // Poisoned: even valid bytes now yield nothing.
        dec.push(&encode_request(&report(1)));
        assert!(dec.try_next().expect("poisoned is quiet").is_none());
    }

    #[test]
    fn lying_length_prefix_is_oversize_not_a_hang() {
        let mut bytes = encode_request(&report(1));
        bytes[14..18].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut dec = RequestDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.try_next(), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn crc_flip_detected() {
        let mut bytes = encode_request(&report(1));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut dec = RequestDecoder::new();
        dec.push(&bytes);
        match dec.try_next() {
            Err(CodecError::BadCrc { .. })
            | Err(CodecError::BadMagic(_))
            | Err(CodecError::BadVersion(_))
            | Err(CodecError::BadKind(_))
            | Err(CodecError::BadFlags(_))
            | Err(CodecError::Oversize(_)) => {}
            other => panic!("corruption must error, got {other:?}"),
        }
    }

    #[test]
    fn drain_reply_round_trip() {
        let reply = DrainReply {
            stats: WireStats {
                ingested: 10,
                enqueued: 9,
                dropped: 1,
                decode_errors: 0,
                rejected: 2,
                classified: 9,
                device_states: 3,
                devices_evicted: 1,
                devices_rewarmed: 1,
                busy: 4,
            },
            decisions: vec![
                WireDecision {
                    mac: MacAddr::station(1),
                    verdict: deepcsi_serve::Verdict::Accept,
                    decided_at: Some(12),
                    decision: Some((0, 0.875, 0.93, 40)),
                },
                WireDecision {
                    mac: MacAddr::station(2),
                    verdict: deepcsi_serve::Verdict::Unknown,
                    decided_at: None,
                    decision: None,
                },
            ],
        };
        let bytes = encode_drain_reply(&reply);
        assert_eq!(decode_drain_reply(&bytes).expect("round trip"), reply);
        // Every truncation of the payload errors, never panics.
        for n in 0..bytes.len() {
            assert!(decode_drain_reply(&bytes[..n]).is_err());
        }
        // Trailing garbage errors too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_drain_reply(&long).is_err());
    }

    #[test]
    fn merge_sums_and_sorts() {
        let mut a = DrainReply {
            stats: WireStats {
                ingested: 1,
                ..WireStats::default()
            },
            decisions: vec![WireDecision {
                mac: MacAddr::station(9),
                verdict: deepcsi_serve::Verdict::Accept,
                decided_at: None,
                decision: None,
            }],
        };
        let b = DrainReply {
            stats: WireStats {
                ingested: 2,
                busy: 5,
                ..WireStats::default()
            },
            decisions: vec![WireDecision {
                mac: MacAddr::station(3),
                verdict: deepcsi_serve::Verdict::Reject,
                decided_at: Some(4),
                decision: None,
            }],
        };
        a.merge(b);
        assert_eq!(a.stats.ingested, 3);
        assert_eq!(a.stats.busy, 5);
        assert_eq!(
            a.decisions.iter().map(|d| d.mac).collect::<Vec<_>>(),
            vec![MacAddr::station(3), MacAddr::station(9)]
        );
    }

    #[test]
    fn merge_collapses_placeholder_rows() {
        let seen = WireDecision {
            mac: MacAddr::station(1),
            verdict: deepcsi_serve::Verdict::Accept,
            decided_at: Some(5),
            decision: Some((0, 1.0, 0.9, 12)),
        };
        let placeholder = WireDecision {
            mac: MacAddr::station(1),
            verdict: deepcsi_serve::Verdict::Unknown,
            decided_at: None,
            decision: None,
        };
        // Evidence wins regardless of merge order.
        for (first, second) in [
            (seen.clone(), placeholder.clone()),
            (placeholder.clone(), seen.clone()),
        ] {
            let mut a = DrainReply {
                stats: WireStats::default(),
                decisions: vec![first],
            };
            a.merge(DrainReply {
                stats: WireStats::default(),
                decisions: vec![second],
            });
            assert_eq!(a.decisions, vec![seen.clone()]);
        }
    }
}
