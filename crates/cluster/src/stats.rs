//! Tier-level counters: per-listener, per-shard and per-connection,
//! exported onto the live observability plane.

use deepcsi_obs::MetricsRegistry;
use deepcsi_serve::ExtraMetrics;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One accepted connection's live counters. Kept (bounded) after close
/// so a scrape sees the final numbers.
#[derive(Debug)]
pub struct ConnTrack {
    /// Monotonic connection id (the metrics label).
    pub id: u64,
    /// Reports received on this connection.
    pub reports: AtomicU64,
    /// Reports answered `BUSY`/`DROP` on this connection.
    pub refused: AtomicU64,
    /// Set when the connection closes.
    pub closed: AtomicBool,
}

impl ConnTrack {
    fn new(id: u64) -> Self {
        ConnTrack {
            id,
            reports: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }
}

/// Closed connections retained for scraping (older ones are forgotten).
const CONN_HISTORY: usize = 64;

/// Shared counters for one node or router process.
///
/// Everything is atomic; the struct is shared by every connection
/// handler and the observability plane's scrape closure (see
/// [`ClusterStats::extra_metrics`]).
#[derive(Debug)]
pub struct ClusterStats {
    /// Connections accepted since start.
    pub connections_opened: AtomicU64,
    /// Connections closed since start.
    pub connections_closed: AtomicU64,
    /// Wire frames decoded (any kind).
    pub frames_in: AtomicU64,
    /// Report frames decoded.
    pub reports_in: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Reports refused with `BUSY` (router queue full under
    /// `DropNewest`).
    pub busy: AtomicU64,
    /// Reports answered `DROP` (engine backpressure).
    pub dropped: AtomicU64,
    /// Connections torn down on a codec error.
    pub codec_errors: AtomicU64,
    /// Reports routed per shard (engine workers on a node, engine
    /// nodes on a router).
    shard_reports: Vec<AtomicU64>,
    conns: Mutex<Vec<Arc<ConnTrack>>>,
    next_conn: AtomicU64,
}

impl ClusterStats {
    /// Counters for a process routing across `shards` targets.
    pub fn new(shards: usize) -> Self {
        ClusterStats {
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            reports_in: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            codec_errors: AtomicU64::new(0),
            shard_reports: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        }
    }

    /// Registers a new connection and returns its tracker.
    pub fn open_conn(&self) -> Arc<ConnTrack> {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let track = Arc::new(ConnTrack::new(id));
        let mut conns = self.conns.lock().unwrap();
        conns.push(Arc::clone(&track));
        // Bound the scrape surface: drop the oldest *closed* entries
        // once the history cap is passed.
        if conns.len() > CONN_HISTORY {
            if let Some(idx) = conns.iter().position(|c| c.closed.load(Ordering::Relaxed)) {
                conns.remove(idx);
            }
        }
        track
    }

    /// Marks a connection closed (its counters stay scrapable for a
    /// while).
    pub fn close_conn(&self, track: &ConnTrack) {
        track.closed.store(true, Ordering::Relaxed);
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one report routed to `shard`.
    pub fn record_shard(&self, shard: usize) {
        if let Some(c) = self.shard_reports.get(shard) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reports routed to `shard` so far.
    pub fn shard_reports(&self, shard: usize) -> u64 {
        self.shard_reports
            .get(shard)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Renders every counter into `reg` under `deepcsi_cluster_*`,
    /// with a `role` label (`"node"` or `"router"`), per-shard gauges
    /// labeled `shard="i"` and per-connection gauges labeled
    /// `conn="id"`.
    pub fn export_into(&self, reg: &mut MetricsRegistry, role: &str) {
        let c = |v: &AtomicU64| v.load(Ordering::Relaxed) as f64;
        for (name, help, value) in [
            (
                "deepcsi_cluster_connections_opened_total",
                "Connections accepted by the cluster tier.",
                c(&self.connections_opened),
            ),
            (
                "deepcsi_cluster_connections_closed_total",
                "Connections closed by the cluster tier.",
                c(&self.connections_closed),
            ),
            (
                "deepcsi_cluster_frames_in_total",
                "Wire frames decoded.",
                c(&self.frames_in),
            ),
            (
                "deepcsi_cluster_reports_in_total",
                "Report frames decoded.",
                c(&self.reports_in),
            ),
            (
                "deepcsi_cluster_bytes_in_total",
                "Bytes read off cluster sockets.",
                c(&self.bytes_in),
            ),
            (
                "deepcsi_cluster_bytes_out_total",
                "Bytes written to cluster sockets.",
                c(&self.bytes_out),
            ),
            (
                "deepcsi_cluster_busy_total",
                "Reports refused with BUSY (router queue full).",
                c(&self.busy),
            ),
            (
                "deepcsi_cluster_dropped_total",
                "Reports answered DROP (engine backpressure).",
                c(&self.dropped),
            ),
            (
                "deepcsi_cluster_codec_errors_total",
                "Connections torn down on a codec error.",
                c(&self.codec_errors),
            ),
        ] {
            reg.labeled_gauge(name, help, &[("role", role)], value);
        }
        for (i, shard) in self.shard_reports.iter().enumerate() {
            let label = i.to_string();
            reg.labeled_gauge(
                "deepcsi_cluster_shard_reports",
                "Reports routed per shard.",
                &[("role", role), ("shard", &label)],
                shard.load(Ordering::Relaxed) as f64,
            );
        }
        for conn in self.conns.lock().unwrap().iter() {
            let label = conn.id.to_string();
            reg.labeled_gauge(
                "deepcsi_cluster_conn_reports",
                "Reports received per connection.",
                &[("role", role), ("conn", &label)],
                conn.reports.load(Ordering::Relaxed) as f64,
            );
            reg.labeled_gauge(
                "deepcsi_cluster_conn_refused",
                "Reports answered BUSY/DROP per connection.",
                &[("role", role), ("conn", &label)],
                conn.refused.load(Ordering::Relaxed) as f64,
            );
        }
    }

    /// Wraps [`ClusterStats::export_into`] as an
    /// [`deepcsi_serve::ObsPlaneConfig::extra`] hook, so `/metrics`
    /// and `/stats.json` on a node's plane include the tier counters.
    pub fn extra_metrics(self: &Arc<Self>, role: &'static str) -> ExtraMetrics {
        let stats = Arc::clone(self);
        Arc::new(move |reg: &mut MetricsRegistry| stats.export_into(reg, role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_renders_every_family() {
        let stats = Arc::new(ClusterStats::new(2));
        stats.frames_in.fetch_add(3, Ordering::Relaxed);
        stats.record_shard(1);
        let track = stats.open_conn();
        track.reports.fetch_add(2, Ordering::Relaxed);
        stats.close_conn(&track);
        let mut reg = MetricsRegistry::new();
        stats.export_into(&mut reg, "node");
        let text = reg.to_prometheus();
        for needle in [
            "deepcsi_cluster_frames_in_total",
            "deepcsi_cluster_shard_reports",
            "shard=\"1\"",
            "deepcsi_cluster_conn_reports",
            "conn=\"0\"",
            "role=\"node\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert_eq!(stats.shard_reports(1), 1);
    }

    #[test]
    fn conn_history_is_bounded() {
        let stats = ClusterStats::new(1);
        for _ in 0..(CONN_HISTORY * 3) {
            let t = stats.open_conn();
            stats.close_conn(&t);
        }
        assert!(stats.conns.lock().unwrap().len() <= CONN_HISTORY + 1);
    }
}
