//! The deterministic demo pipeline shared by `deepcsi-clusterd`, the
//! loopback tests and `cluster_bench`.
//!
//! This reproduces the `deepcsi-served` recipe **bit-for-bit**: same
//! generator, same split, same model, same training seed. That
//! determinism is what makes the distributed tier work without
//! shipping weights — every node process trains the identical model
//! independently, so a sharded cluster's merged verdicts are
//! byte-identical to a single-process engine over the same replay.

use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_nn::TrainConfig;
use deepcsi_serve::ReplaySource;

/// Knobs for the demo pipeline. Every process in a cluster must use
/// identical values — they parameterize the deterministic recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemoConfig {
    /// Transmitting AP modules (= classifier classes).
    pub modules: u32,
    /// Beamforming snapshots per trace.
    pub snapshots: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for DemoConfig {
    fn default() -> Self {
        DemoConfig {
            modules: 2,
            snapshots: 16,
            epochs: 2,
        }
    }
}

/// Generates the synthetic D1 dataset for `cfg` (deterministic).
pub fn demo_dataset(cfg: &DemoConfig) -> Dataset {
    generate_d1(&GenConfig {
        num_modules: cfg.modules,
        snapshots_per_trace: cfg.snapshots,
        ..GenConfig::default()
    })
}

/// Trains the demo classifier on `ds` — the `deepcsi-served` recipe
/// verbatim (stride-4 tensors, S1 split, demo model, seed 5).
pub fn demo_model(cfg: &DemoConfig, ds: &Dataset) -> Authenticator {
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let model = ModelConfig::demo(ds.modules().len());
    let exp = ExperimentConfig {
        model: model.clone(),
        train: TrainConfig {
            epochs: cfg.epochs,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&exp, &split);
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    let shape: [usize; 3] = probe.shape().try_into().expect("rank-3 input");
    Authenticator::with_config(result.network, spec, model, (shape[0], shape[1], shape[2]))
}

/// The dataset's replay as `(source MAC, raw MPDU)` pairs, in arrival
/// order — what a [`crate::ClusterClient`] streams.
pub fn demo_frames(ds: &Dataset) -> Vec<(MacAddr, Vec<u8>)> {
    let replay = ReplaySource::from_dataset(ds);
    replay
        .frames()
        .map(|bytes| {
            let mac = BeamformingReportFrame::parse(bytes)
                .expect("replay frames are valid")
                .source();
            (mac, bytes.to_vec())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_deterministic() {
        let cfg = DemoConfig {
            modules: 2,
            snapshots: 10,
            epochs: 1,
        };
        let ds = demo_dataset(&cfg);
        let a = demo_model(&cfg, &ds);
        let b = demo_model(&cfg, &demo_dataset(&cfg));
        // Same recipe, separate runs → bit-identical logits on the
        // same report (the property cross-process verdict equivalence
        // rests on).
        let fb = &ds.traces[0].snapshots[0];
        let (fa, fb_model) = (a.freeze(), b.freeze());
        let xa = fa.tensorize(fb);
        let xb = fb_model.tensorize(fb);
        let ya = fa.model().infer(&xa, &mut fa.ctx());
        let yb = fb_model.model().infer(&xb, &mut fb_model.ctx());
        let bits =
            |t: &deepcsi_nn::Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ya), bits(&yb));
    }

    #[test]
    fn frames_carry_their_trace_macs() {
        let cfg = DemoConfig::default();
        let ds = demo_dataset(&cfg);
        let frames = demo_frames(&ds);
        assert_eq!(frames.len(), ds.num_snapshots());
        let expected = ReplaySource::source_mac(&ds.traces[0]);
        assert!(frames.iter().any(|(mac, _)| *mac == expected));
    }
}
