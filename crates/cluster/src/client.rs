//! The sender side of the wire protocol: stream reports, account
//! refusals, collect merged drain replies.

use crate::codec::{
    decode_drain_reply, encode_request, DrainReply, FrameKind, RequestFrame, ResponseDecoder,
    ResponseStatus,
};
use deepcsi_frame::MacAddr;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Response-poll interval for the reader thread.
const POLL: Duration = Duration::from_millis(50);

/// Snapshot of a client's send/refusal accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientCounters {
    /// Report frames written.
    pub sent: u64,
    /// `BUSY` responses received (router queue full).
    pub busy: u64,
    /// `DROP` responses received (engine backpressure).
    pub dropped: u64,
    /// `REJECT` responses received (malformed payload or request).
    pub rejected: u64,
}

#[derive(Default)]
struct Shared {
    busy: AtomicU64,
    dropped: AtomicU64,
    rejected: AtomicU64,
    closed: AtomicBool,
}

/// A connection to an [`crate::EngineNode`] or [`crate::ShardRouter`]
/// — both speak the same protocol, so a client is oblivious to
/// whether it talks to one engine or a whole cluster.
pub struct ClusterClient {
    stream: TcpStream,
    seq: u32,
    sent: u64,
    shared: Arc<Shared>,
    inbox: Receiver<DrainReply>,
    reader: Option<JoinHandle<()>>,
}

impl ClusterClient {
    /// Connects to `addr` and starts the response reader.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: &str) -> io::Result<ClusterClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let shared = Arc::new(Shared::default());
        let (tx, inbox) = mpsc::channel();
        let reader = {
            let mut r = stream.try_clone()?;
            let _ = r.set_read_timeout(Some(POLL));
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cluster-client-read".into())
                .spawn(move || {
                    let mut decoder = ResponseDecoder::new();
                    let mut buf = [0u8; 16 * 1024];
                    loop {
                        if shared.closed.load(Ordering::Relaxed) {
                            break;
                        }
                        match r.read(&mut buf) {
                            Ok(0) => break,
                            Ok(n) => {
                                decoder.push(&buf[..n]);
                                loop {
                                    match decoder.try_next() {
                                        Ok(Some(resp)) => match resp.kind {
                                            FrameKind::Report => {
                                                let counter = match resp.status {
                                                    ResponseStatus::Busy => &shared.busy,
                                                    ResponseStatus::Drop => &shared.dropped,
                                                    ResponseStatus::Reject
                                                    | ResponseStatus::Ack => &shared.rejected,
                                                };
                                                counter.fetch_add(1, Ordering::Relaxed);
                                            }
                                            FrameKind::Drain | FrameKind::Shutdown => {
                                                if resp.status == ResponseStatus::Ack {
                                                    if let Ok(reply) =
                                                        decode_drain_reply(&resp.payload)
                                                    {
                                                        let _ = tx.send(reply);
                                                    }
                                                }
                                            }
                                        },
                                        Ok(None) => break,
                                        Err(_) => return,
                                    }
                                }
                            }
                            Err(e)
                                if e.kind() == io::ErrorKind::WouldBlock
                                    || e.kind() == io::ErrorKind::TimedOut =>
                            {
                                continue;
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn cluster client reader")
        };
        Ok(ClusterClient {
            stream,
            seq: 0,
            sent: 0,
            shared,
            inbox,
            reader: Some(reader),
        })
    }

    fn send(&mut self, kind: FrameKind, mac: MacAddr, payload: Vec<u8>) -> io::Result<u32> {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let frame = RequestFrame {
            kind,
            seq,
            mac,
            payload,
        };
        self.stream.write_all(&encode_request(&frame))?;
        Ok(seq)
    }

    /// Streams one beamforming report (`mpdu` = raw 802.11 bytes,
    /// `mac` = its source address, the shard key).
    ///
    /// A blocking write *is* the lossless backpressure path: when the
    /// whole pipeline behind this socket is full, this call stalls.
    ///
    /// # Errors
    ///
    /// Returns the socket write error.
    pub fn send_report(&mut self, mac: MacAddr, mpdu: &[u8]) -> io::Result<()> {
        self.send(FrameKind::Report, mac, mpdu.to_vec())?;
        self.sent += 1;
        Ok(())
    }

    /// Flushes the remote pipeline and returns its (merged) stats and
    /// per-device decisions.
    ///
    /// # Errors
    ///
    /// The socket write error, or `TimedOut` if no ack arrives within
    /// `timeout`.
    pub fn drain(&mut self, timeout: Duration) -> io::Result<DrainReply> {
        self.send(FrameKind::Drain, MacAddr::new([0; 6]), Vec::new())?;
        self.wait_reply(timeout)
    }

    /// Drains, asks the remote end to stop serving, and returns the
    /// final reply.
    ///
    /// # Errors
    ///
    /// The socket write error, or `TimedOut` if no ack arrives within
    /// `timeout`.
    pub fn shutdown(&mut self, timeout: Duration) -> io::Result<DrainReply> {
        self.send(FrameKind::Shutdown, MacAddr::new([0; 6]), Vec::new())?;
        self.wait_reply(timeout)
    }

    fn wait_reply(&self, timeout: Duration) -> io::Result<DrainReply> {
        match self.inbox.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no drain reply within timeout",
            )),
            Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "reader thread gone",
            )),
        }
    }

    /// Current send/refusal accounting. Responses arrive
    /// asynchronously; the counters are settled after a successful
    /// [`ClusterClient::drain`] (the ack is ordered behind every
    /// per-report response on the same socket).
    pub fn counters(&self) -> ClientCounters {
        ClientCounters {
            sent: self.sent,
            busy: self.shared.busy.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}
