//! The engine node: a TCP listener multiplexing many client
//! connections into one [`Engine`].

use crate::codec::{
    encode_drain_reply, encode_response, DrainReply, FrameKind, RequestDecoder, RequestFrame,
    ResponseFrame, ResponseStatus, WireDecision, WireStats,
};
use crate::stats::ClusterStats;
use deepcsi_serve::{Engine, IngestOutcome};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked `accept`/`read` waits before re-checking the
/// stop flag.
const POLL: Duration = Duration::from_millis(50);

/// A TCP listener feeding one engine.
///
/// Each accepted connection gets a handler thread that reads wire
/// frames ([`crate::codec`]) and hands report payloads straight to
/// [`Engine::ingest_frame`]. Backpressure extends across the wire:
///
/// * [`deepcsi_serve::Backpressure::Block`] (the node default in
///   `deepcsi-clusterd`) — a full shard queue blocks the handler, the
///   socket's receive window fills, and the sender stalls. Lossless.
/// * [`deepcsi_serve::Backpressure::DropNewest`] — the engine sheds
///   the report and the node answers an explicit `DROP` response, so
///   the sender can account the loss (reconciled into
///   [`deepcsi_serve::EngineStats::dropped`]).
///
/// `DRAIN` requests flush the engine and reply with counters plus
/// per-device decisions; `SHUTDOWN` additionally raises
/// [`EngineNode::shutdown_requested`] so the host process can stop.
/// A codec error tears only the offending connection down.
pub struct EngineNode {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl EngineNode {
    /// Binds `listen` (port `0` picks a free port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(
        listen: &str,
        engine: Arc<Engine>,
        stats: Arc<ClusterStats>,
    ) -> io::Result<EngineNode> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let shutdown = Arc::clone(&shutdown);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("cluster-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                let engine = Arc::clone(&engine);
                                let stats = Arc::clone(&stats);
                                let stop = Arc::clone(&stop);
                                let shutdown = Arc::clone(&shutdown);
                                let handle = std::thread::Builder::new()
                                    .name(format!("cluster-conn-{peer}"))
                                    .spawn(move || {
                                        handle_conn(stream, &engine, &stats, &stop, &shutdown);
                                    })
                                    .expect("spawn connection handler");
                                handlers.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                })
                .expect("spawn cluster accept loop")
        };
        Ok(EngineNode {
            engine,
            local_addr,
            stop,
            shutdown,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (read the ephemeral port back).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this node feeds.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// `true` once a client sent `SHUTDOWN` (already acked with a
    /// final drain reply). The host process should [`EngineNode::stop`]
    /// and tear its engine down.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Stops accepting, joins every connection handler, and returns.
    /// The engine is left running (snapshot/shutdown it separately).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.handlers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// Builds the drain reply for this node's engine.
fn drain_reply(engine: &Engine) -> DrainReply {
    engine.drain();
    let stats = WireStats::from_engine(&engine.stats());
    let mut decisions: Vec<WireDecision> = engine
        .decisions()
        .iter()
        .map(WireDecision::from_engine)
        .collect();
    decisions.sort_by_key(|d| d.mac.octets());
    DrainReply { stats, decisions }
}

fn send(stream: &mut TcpStream, stats: &ClusterStats, frame: &ResponseFrame) -> io::Result<()> {
    let bytes = encode_response(frame);
    stats
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    stream.write_all(&bytes)
}

/// One connection's read → decode → ingest loop.
fn handle_conn(
    mut stream: TcpStream,
    engine: &Engine,
    stats: &ClusterStats,
    stop: &AtomicBool,
    shutdown: &AtomicBool,
) {
    let track = stats.open_conn();
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut decoder = RequestDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                decoder.push(&buf[..n]);
                loop {
                    match decoder.try_next() {
                        Ok(Some(frame)) => {
                            stats.frames_in.fetch_add(1, Ordering::Relaxed);
                            if !handle_frame(&frame, &mut stream, engine, stats, shutdown, &track) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Hostile or corrupt stream: answer REJECT
                            // (best effort) and tear the connection
                            // down. The decoder is poisoned; nothing
                            // more can be parsed.
                            stats.codec_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = send(
                                &mut stream,
                                stats,
                                &ResponseFrame {
                                    kind: FrameKind::Report,
                                    status: ResponseStatus::Reject,
                                    seq: 0,
                                    payload: Vec::new(),
                                },
                            );
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    stats.close_conn(&track);
}

/// Processes one decoded frame; `false` ends the connection.
fn handle_frame(
    frame: &RequestFrame,
    stream: &mut TcpStream,
    engine: &Engine,
    stats: &ClusterStats,
    shutdown: &AtomicBool,
    track: &crate::stats::ConnTrack,
) -> bool {
    match frame.kind {
        FrameKind::Report => {
            stats.reports_in.fetch_add(1, Ordering::Relaxed);
            track.reports.fetch_add(1, Ordering::Relaxed);
            let workers = engine.config().workers;
            stats.record_shard(deepcsi_serve::shard_of(frame.mac, workers));
            match engine.ingest_frame(&frame.payload) {
                IngestOutcome::Enqueued => true, // happy path is silent
                IngestOutcome::Dropped => {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                    track.refused.fetch_add(1, Ordering::Relaxed);
                    send(
                        stream,
                        stats,
                        &ResponseFrame {
                            kind: FrameKind::Report,
                            status: ResponseStatus::Drop,
                            seq: frame.seq,
                            payload: Vec::new(),
                        },
                    )
                    .is_ok()
                }
                IngestOutcome::DecodeError => send(
                    stream,
                    stats,
                    &ResponseFrame {
                        kind: FrameKind::Report,
                        status: ResponseStatus::Reject,
                        seq: frame.seq,
                        payload: Vec::new(),
                    },
                )
                .is_ok(),
            }
        }
        FrameKind::Drain | FrameKind::Shutdown => {
            let reply = drain_reply(engine);
            // Raise the flag *before* acking, so a client that saw the
            // ack observes `shutdown_requested() == true`.
            if frame.kind == FrameKind::Shutdown {
                shutdown.store(true, Ordering::Relaxed);
            }
            send(
                stream,
                stats,
                &ResponseFrame {
                    kind: frame.kind,
                    status: ResponseStatus::Ack,
                    seq: frame.seq,
                    payload: encode_drain_reply(&reply),
                },
            )
            .is_ok()
        }
    }
}
