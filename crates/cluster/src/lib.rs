//! # deepcsi-cluster — the distributed serving tier
//!
//! One [`deepcsi_serve::Engine`] saturates one process. A passive
//! monitoring deployment has many sniffers and many cores spread over
//! many processes, so this crate lifts the engine's MAC-hash sharding
//! one level up: the exact [`deepcsi_serve::shard_of`] function that
//! routes reports to worker threads *inside* an engine here routes them
//! across engine *processes*, preserving per-stream ordering end to
//! end.
//!
//! The tier has four pieces:
//!
//! * **Wire codec** ([`codec`]) — a compact length-prefixed frame
//!   format (version byte, sequence number, source MAC, raw 802.11
//!   MPDU payload, CRC-32 trailer) with a strict incremental decoder
//!   that never panics on hostile bytes: truncated frames, lying
//!   length prefixes, and bad CRCs all surface as typed
//!   [`CodecError`]s and tear the connection down cleanly.
//! * **Engine node** ([`EngineNode`]) — a TCP listener multiplexing
//!   many client connections into one engine. Backpressure semantics
//!   extend across the wire: with [`deepcsi_serve::Backpressure::Block`]
//!   a full shard queue blocks the reader, which stalls the socket and
//!   eventually the sender (lossless); with `DropNewest` the node
//!   answers an explicit `DROP` response and counts it.
//! * **Shard router** ([`ShardRouter`]) — a listener that fans each
//!   client connection out across N engine nodes by
//!   `shard_of(source MAC, N)`, with a bounded per-node queue per
//!   connection. A full queue under `DropNewest` answers an explicit
//!   `BUSY` response; `DRAIN`/`SHUTDOWN` requests fan out to every
//!   node and the per-node replies merge into one.
//! * **Client** ([`ClusterClient`]) — the sender side: streams
//!   reports, tracks `BUSY`/`DROP`/`REJECT` responses, and collects
//!   the merged [`DrainReply`].
//!
//! Because training is deterministic (fixed seed, fixed recipe —
//! [`demo`] reproduces the `deepcsi-served` recipe bit-for-bit),
//! separate node processes independently train identical models, and
//! the merged per-device verdicts from a sharded cluster are
//! **byte-identical** to a single-process engine over the same replay
//! — the loopback tests and `deepcsi-clusterd send --compare-local`
//! prove it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod codec;
pub mod demo;
mod node;
mod router;
mod stats;

pub use client::{ClientCounters, ClusterClient};
pub use codec::{
    decode_drain_reply, encode_drain_reply, CodecError, DrainReply, FrameKind, RequestDecoder,
    RequestFrame, ResponseDecoder, ResponseFrame, ResponseStatus, WireDecision, WireStats,
    MAX_PAYLOAD,
};
pub use node::EngineNode;
pub use router::{RouterConfig, ShardRouter};
pub use stats::{ClusterStats, ConnTrack};
