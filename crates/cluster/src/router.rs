//! The shard router: one listener fanning each client connection out
//! across N engine nodes by MAC hash.

use crate::codec::{
    encode_request, encode_response, DrainReply, FrameKind, RequestDecoder, RequestFrame,
    ResponseDecoder, ResponseFrame, ResponseStatus,
};
use crate::stats::ClusterStats;
use deepcsi_serve::{shard_of, Backpressure};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked `accept`/`read` waits before re-checking stop.
const POLL: Duration = Duration::from_millis(50);

/// How long a drain fan-out waits for each node's reply before
/// merging what it has.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Router construction parameters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`"127.0.0.1:9700"`; port `0` picks a free
    /// port).
    pub listen: String,
    /// Engine-node addresses; `shard_of(mac, nodes.len())` picks the
    /// target. Order is the shard order and must match across
    /// restarts for snapshot compatibility.
    pub nodes: Vec<String>,
    /// Bounded per-node forward queue, per client connection.
    pub queue_capacity: usize,
    /// Full-queue policy, mirroring the engine's:
    /// [`Backpressure::Block`] stalls the client socket (lossless);
    /// [`Backpressure::DropNewest`] sheds the report and answers an
    /// explicit `BUSY` response.
    pub backpressure: Backpressure,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            listen: "127.0.0.1:0".to_string(),
            nodes: Vec::new(),
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
        }
    }
}

/// A listener that speaks the same wire protocol as an [`crate::EngineNode`]
/// but forwards every report to one of N nodes by
/// [`deepcsi_serve::shard_of`] — the engine's *thread*-level shard
/// function reused at the *process* level, so per-stream ordering is
/// preserved twice over (per-node queue here, per-shard queue there).
///
/// `DRAIN`/`SHUTDOWN` requests fan out to every node **behind** any
/// queued reports (same ordered queues), and the per-node replies
/// merge into a single ack: counters sum, disjoint decision lists
/// concatenate and sort by MAC.
pub struct ShardRouter {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardRouter {
    /// Binds the listen address and starts routing. Node connections
    /// are made lazily, one set per accepted client.
    ///
    /// # Errors
    ///
    /// Returns the bind error. An empty `cfg.nodes` is a usage error
    /// and panics.
    pub fn start(cfg: RouterConfig, stats: Arc<ClusterStats>) -> io::Result<ShardRouter> {
        assert!(!cfg.nodes.is_empty(), "router needs at least one node");
        let listener = TcpListener::bind(&cfg.listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("router-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                let cfg = cfg.clone();
                                let stats = Arc::clone(&stats);
                                let stop = Arc::clone(&stop);
                                let shutdown = Arc::clone(&shutdown);
                                let handle = std::thread::Builder::new()
                                    .name(format!("router-conn-{peer}"))
                                    .spawn(move || {
                                        route_conn(stream, &cfg, &stats, &stop, &shutdown);
                                    })
                                    .expect("spawn router connection");
                                conns.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                })
                .expect("spawn router accept loop")
        };
        Ok(ShardRouter {
            local_addr,
            stop,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once a client's `SHUTDOWN` has been fanned out, merged
    /// and acked — the host process should [`ShardRouter::stop`].
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins every connection.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.conns.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// Everything one client connection holds per node.
struct NodeLink {
    /// Bounded forward queue into the writer thread.
    tx: SyncSender<Vec<u8>>,
    /// The node-side socket (shut down to unblock threads at close).
    stream: TcpStream,
    writer: JoinHandle<()>,
    relay: JoinHandle<()>,
}

/// One client connection: fan reports out, relay failures back, merge
/// drains.
fn route_conn(
    client: TcpStream,
    cfg: &RouterConfig,
    stats: &ClusterStats,
    stop: &AtomicBool,
    shutdown: &AtomicBool,
) {
    let track = stats.open_conn();
    let _ = client.set_nodelay(true);
    let _ = client.set_read_timeout(Some(POLL));
    // Relay threads and the request loop both write to the client;
    // frame writes are made atomic by this mutex.
    let client_w = Arc::new(Mutex::new(match client.try_clone() {
        Ok(s) => s,
        Err(_) => {
            stats.close_conn(&track);
            return;
        }
    }));
    // Per-drain coordination: each relay forwards its node's
    // drain/shutdown acks here.
    let (coord_tx, coord_rx) = mpsc::channel::<DrainReply>();
    let done = Arc::new(AtomicBool::new(false));
    let mut links = Vec::with_capacity(cfg.nodes.len());
    for addr in &cfg.nodes {
        match connect_node(addr, cfg.queue_capacity, &client_w, &coord_tx, &done, stats) {
            Ok(link) => links.push(link),
            Err(e) => {
                eprintln!("router: connecting node {addr}: {e}");
                // Without a full shard set the routing function is
                // wrong for every report; refuse the client.
                teardown(links, &done);
                stats.close_conn(&track);
                return;
            }
        }
    }

    let mut client_r = client;
    let mut decoder = RequestDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    let busy_here = AtomicU64::new(0);
    'conn: loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match client_r.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                decoder.push(&buf[..n]);
                loop {
                    match decoder.try_next() {
                        Ok(Some(frame)) => {
                            stats.frames_in.fetch_add(1, Ordering::Relaxed);
                            if !route_frame(
                                &frame, cfg, &links, stats, &track, &busy_here, &client_w,
                                &coord_rx, shutdown,
                            ) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            stats.codec_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = write_client(
                                &client_w,
                                stats,
                                &ResponseFrame {
                                    kind: FrameKind::Report,
                                    status: ResponseStatus::Reject,
                                    seq: 0,
                                    payload: Vec::new(),
                                },
                            );
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    teardown(links, &done);
    stats.close_conn(&track);
}

/// Routes one decoded client frame; `false` ends the connection.
#[allow(clippy::too_many_arguments)]
fn route_frame(
    frame: &RequestFrame,
    cfg: &RouterConfig,
    links: &[NodeLink],
    stats: &ClusterStats,
    track: &crate::stats::ConnTrack,
    busy_here: &AtomicU64,
    client_w: &Mutex<TcpStream>,
    coord_rx: &Receiver<DrainReply>,
    shutdown: &AtomicBool,
) -> bool {
    match frame.kind {
        FrameKind::Report => {
            stats.reports_in.fetch_add(1, Ordering::Relaxed);
            track.reports.fetch_add(1, Ordering::Relaxed);
            let shard = shard_of(frame.mac, links.len());
            stats.record_shard(shard);
            let bytes = encode_request(frame);
            match cfg.backpressure {
                Backpressure::Block => links[shard].tx.send(bytes).is_ok(),
                Backpressure::DropNewest => match links[shard].tx.try_send(bytes) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_)) => {
                        stats.busy.fetch_add(1, Ordering::Relaxed);
                        busy_here.fetch_add(1, Ordering::Relaxed);
                        track.refused.fetch_add(1, Ordering::Relaxed);
                        write_client(
                            client_w,
                            stats,
                            &ResponseFrame {
                                kind: FrameKind::Report,
                                status: ResponseStatus::Busy,
                                seq: frame.seq,
                                payload: Vec::new(),
                            },
                        )
                        .is_ok()
                    }
                    Err(TrySendError::Disconnected(_)) => false,
                },
            }
        }
        FrameKind::Drain | FrameKind::Shutdown => {
            // Fan out behind every queued report (same ordered
            // queues), then merge one reply per node.
            let bytes = encode_request(frame);
            let mut expected = 0usize;
            for link in links {
                if link.tx.send(bytes.clone()).is_ok() {
                    expected += 1;
                }
            }
            let mut merged = DrainReply::default();
            for _ in 0..expected {
                match coord_rx.recv_timeout(DRAIN_TIMEOUT) {
                    Ok(reply) => merged.merge(reply),
                    Err(_) => break, // merge what we have
                }
            }
            merged.stats.busy += busy_here.load(Ordering::Relaxed);
            // Raise the flag *before* acking, so a client that saw the
            // ack observes `shutdown_requested() == true`.
            if frame.kind == FrameKind::Shutdown {
                shutdown.store(true, Ordering::Relaxed);
            }
            let ok = write_client(
                client_w,
                stats,
                &ResponseFrame {
                    kind: frame.kind,
                    status: ResponseStatus::Ack,
                    seq: frame.seq,
                    payload: crate::codec::encode_drain_reply(&merged),
                },
            )
            .is_ok();
            if frame.kind == FrameKind::Shutdown {
                return false;
            }
            ok
        }
    }
}

/// Opens one node connection and spawns its writer + relay threads.
fn connect_node(
    addr: &str,
    queue_capacity: usize,
    client_w: &Arc<Mutex<TcpStream>>,
    coord_tx: &mpsc::Sender<DrainReply>,
    done: &Arc<AtomicBool>,
    stats: &ClusterStats,
) -> io::Result<NodeLink> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(queue_capacity.max(1));
    let writer = {
        let mut w = stream.try_clone()?;
        std::thread::Builder::new()
            .name(format!("router-write-{addr}"))
            .spawn(move || {
                // Blocking writes to the node socket are the Block
                // backpressure path: a slow node fills its receive
                // window, this thread stalls, the bounded queue
                // fills, and the client stalls (or gets BUSY).
                while let Ok(bytes) = rx.recv() {
                    if w.write_all(&bytes).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn router writer")
    };
    let relay = {
        let mut r = stream.try_clone()?;
        let _ = r.set_read_timeout(Some(POLL));
        let client_w = Arc::clone(client_w);
        let coord_tx = coord_tx.clone();
        let done = Arc::clone(done);
        let addr = addr.to_string();
        std::thread::Builder::new()
            .name(format!("router-relay-{addr}"))
            .spawn(move || {
                let mut decoder = ResponseDecoder::new();
                let mut buf = [0u8; 16 * 1024];
                loop {
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    match r.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            decoder.push(&buf[..n]);
                            loop {
                                match decoder.try_next() {
                                    Ok(Some(resp)) => match resp.kind {
                                        // Per-report failures pass
                                        // straight through to the
                                        // client.
                                        FrameKind::Report => {
                                            let mut w = client_w.lock().unwrap();
                                            let _ = w.write_all(&encode_response(&resp));
                                        }
                                        FrameKind::Drain | FrameKind::Shutdown => {
                                            if let Ok(reply) =
                                                crate::codec::decode_drain_reply(&resp.payload)
                                            {
                                                let _ = coord_tx.send(reply);
                                            }
                                        }
                                    },
                                    Ok(None) => break,
                                    Err(e) => {
                                        eprintln!("router: node {addr} sent garbage: {e}");
                                        return;
                                    }
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            continue;
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn router relay")
    };
    // Forwarded bytes are accounted once, at enqueue time, by the
    // frame reader; socket-level bytes_out would double-count.
    let _ = stats;
    Ok(NodeLink {
        tx,
        stream,
        writer,
        relay,
    })
}

/// Drops queues, shuts node sockets down, and joins the per-node
/// threads.
fn teardown(links: Vec<NodeLink>, done: &AtomicBool) {
    done.store(true, Ordering::Relaxed);
    for link in links {
        drop(link.tx); // writer exits on channel close
        let _ = link.stream.shutdown(std::net::Shutdown::Both);
        let _ = link.writer.join();
        let _ = link.relay.join();
    }
}

fn write_client(
    stream: &Mutex<TcpStream>,
    stats: &ClusterStats,
    frame: &ResponseFrame,
) -> io::Result<()> {
    let bytes = encode_response(frame);
    stats
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    stream.lock().unwrap().write_all(&bytes)
}
