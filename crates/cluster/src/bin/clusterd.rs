//! `deepcsi-clusterd` — the distributed serving tier's process.
//!
//! Three subcommands, one wire protocol:
//!
//! ```text
//! deepcsi-clusterd node --listen ADDR
//!                  [--modules N] [--snapshots N] [--epochs N]
//!                  [--workers N] [--infer-threads N] [--queue N]
//!                  [--policy fixed|confidence|adaptive] [--drop]
//!                  [--max-devices N] [--snapshot-file PATH]
//!                  [--obs-listen ADDR]
//!
//! deepcsi-clusterd listen --listen ADDR --node ADDR [--node ADDR]...
//!                  [--queue N] [--drop]
//!
//! deepcsi-clusterd send --connect ADDR
//!                  [--modules N] [--snapshots N] [--epochs N]
//!                  [--repeat N] [--compare-local] [--shutdown]
//! ```
//!
//! * `node` trains the deterministic demo model (same recipe and seed
//!   as `deepcsi-served` — every node in a cluster independently
//!   arrives at identical weights), starts one engine behind a TCP
//!   listener, and serves until a client sends `SHUTDOWN`. With
//!   `--snapshot-file` the per-device policy state is restored at
//!   start (if the file exists) and written at shutdown, so a killed
//!   and restarted node resumes its learned `AdaptiveThreshold`
//!   floors instead of re-learning them. `--obs-listen` attaches the
//!   live observability plane with the tier's per-connection and
//!   per-shard counters on `/metrics` (scrape it with
//!   `obs-check --scrape`).
//! * `listen` runs the shard router: clients connect here, and each
//!   report fans out to `shard_of(source MAC, nodes)` — the engine's
//!   own shard function lifted across processes.
//! * `send` streams the demo replay at the given address (node or
//!   router — same protocol), drains, and prints the merged stats.
//!   `--compare-local` additionally runs the identical replay through
//!   an in-process engine and exits non-zero unless the cluster's
//!   merged per-device decisions are **byte-identical** to the
//!   single-process ones.
//!
//! Every listener prints `LISTENING <addr>` once ready (port `0`
//! picks a free port), so scripts can bind ephemerally and read the
//! address back.

use deepcsi_cluster::demo::{demo_dataset, demo_frames, demo_model, DemoConfig};
use deepcsi_cluster::{
    encode_drain_reply, ClusterClient, ClusterStats, DrainReply, EngineNode, RouterConfig,
    ShardRouter, WireDecision,
};
use deepcsi_serve::{
    Backpressure, DecisionPolicyConfig, Engine, EngineConfig, EngineSnapshot, ObsPlane,
    ObsPlaneConfig, PolicyKind, ReplaySource,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll interval while waiting for a shutdown request.
const POLL: Duration = Duration::from_millis(100);

fn usage() -> ! {
    eprintln!("usage: deepcsi-clusterd <node|listen|send> [flags] (see src/bin/clusterd.rs)");
    std::process::exit(2);
}

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn parse() -> (String, Flags) {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            usage();
        }
        let cmd = args.remove(0);
        (cmd, Flags { args })
    }

    /// Every value of a repeatable `--flag VALUE`.
    fn all(&self, flag: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.args.len() {
            if self.args[i] == flag {
                match self.args.get(i + 1) {
                    Some(v) => out.push(v.clone()),
                    None => {
                        eprintln!("{flag} expects a value");
                        usage();
                    }
                }
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    fn get(&self, flag: &str) -> Option<String> {
        self.all(flag).pop()
    }

    fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.get(flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("{flag}: invalid value {v:?}");
                usage();
            }),
            None => default,
        }
    }

    fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn demo(&self) -> DemoConfig {
        DemoConfig {
            modules: self.num("--modules", 2),
            snapshots: self.num("--snapshots", 16),
            epochs: self.num("--epochs", 2),
        }
    }

    fn engine_config(&self) -> EngineConfig {
        let policy: PolicyKind = match self.get("--policy") {
            Some(v) => v.parse().unwrap_or_else(|e: String| {
                eprintln!("--policy: {e}");
                usage();
            }),
            None => PolicyKind::default(),
        };
        EngineConfig {
            workers: self.num("--workers", 2),
            infer_threads: self.num("--infer-threads", 1),
            queue_capacity: self.num("--queue", 1024),
            backpressure: if self.has("--drop") {
                Backpressure::DropNewest
            } else {
                Backpressure::Block
            },
            max_device_states: self.get("--max-devices").map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--max-devices: invalid value {v:?}");
                    usage();
                })
            }),
            decision: DecisionPolicyConfig {
                kind: policy,
                ..DecisionPolicyConfig::default()
            },
            // The audit ring feeds `/audit/tail` on the plane; cheap
            // enough to keep on unconditionally.
            audit: Some(deepcsi_serve::AuditConfig::default()),
            ..EngineConfig::default()
        }
    }
}

fn main() {
    let (cmd, flags) = Flags::parse();
    match cmd.as_str() {
        "node" => run_node(&flags),
        "listen" => run_listen(&flags),
        "send" => run_send(&flags),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage();
        }
    }
}

fn run_node(flags: &Flags) {
    let listen = flags.get("--listen").unwrap_or_else(|| {
        eprintln!("node: --listen is required");
        usage();
    });
    let demo = flags.demo();
    let t = Instant::now();
    let ds = demo_dataset(&demo);
    let auth = demo_model(&demo, &ds);
    eprintln!(
        "node: trained demo model ({} modules, {:.1?})",
        demo.modules,
        t.elapsed()
    );
    let cfg = flags.engine_config();
    let engine = Arc::new(Engine::start(cfg, auth, ReplaySource::registry(&ds)));

    // Restore per-device policy state from a previous life, if any.
    let snapshot_file = flags.get("--snapshot-file");
    if let Some(path) = &snapshot_file {
        if std::path::Path::new(path).exists() {
            match EngineSnapshot::read_from(std::path::Path::new(path)) {
                Ok(snap) => {
                    let n = engine.restore(&snap);
                    eprintln!("node: restored {n} device states from {path}");
                }
                Err(e) => {
                    eprintln!("node: snapshot {path} unreadable ({e}); starting cold");
                }
            }
        }
    }

    let stats = Arc::new(ClusterStats::new(engine.config().workers));
    let plane = flags.get("--obs-listen").map(|addr| {
        let plane = ObsPlane::start(
            ObsPlaneConfig {
                listen: addr.clone(),
                extra: Some(stats.extra_metrics("node")),
                ..ObsPlaneConfig::default()
            },
            &engine,
        )
        .unwrap_or_else(|e| {
            eprintln!("node: binding observability listener {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("node: observability plane on http://{}", plane.local_addr());
        plane.set_ready(true);
        plane
    });

    let node =
        EngineNode::start(&listen, Arc::clone(&engine), Arc::clone(&stats)).unwrap_or_else(|e| {
            eprintln!("node: binding {listen}: {e}");
            std::process::exit(1);
        });
    println!("LISTENING {}", node.local_addr());

    while !node.shutdown_requested() {
        std::thread::sleep(POLL);
    }
    node.stop();
    if let Some(path) = &snapshot_file {
        match engine.snapshot().write_to(std::path::Path::new(path)) {
            Ok(()) => eprintln!("node: snapshot written to {path}"),
            Err(e) => eprintln!("node: writing snapshot {path}: {e}"),
        }
    }
    if let Some(plane) = plane {
        plane.set_ready(false);
        plane.shutdown();
    }
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| {
        eprintln!("node: engine still shared at shutdown");
        std::process::exit(1);
    });
    let report = engine.shutdown();
    eprintln!("node: final stats: {}", report.stats);
}

fn run_listen(flags: &Flags) {
    let listen = flags.get("--listen").unwrap_or_else(|| {
        eprintln!("listen: --listen is required");
        usage();
    });
    let nodes = flags.all("--node");
    if nodes.is_empty() {
        eprintln!("listen: at least one --node is required");
        usage();
    }
    let stats = Arc::new(ClusterStats::new(nodes.len()));
    let router = ShardRouter::start(
        RouterConfig {
            listen,
            nodes,
            queue_capacity: flags.num("--queue", 1024),
            backpressure: if flags.has("--drop") {
                Backpressure::DropNewest
            } else {
                Backpressure::Block
            },
        },
        Arc::clone(&stats),
    )
    .unwrap_or_else(|e| {
        eprintln!("listen: {e}");
        std::process::exit(1);
    });
    println!("LISTENING {}", router.local_addr());
    while !router.shutdown_requested() {
        std::thread::sleep(POLL);
    }
    router.stop();
    eprintln!(
        "router: done ({} reports in, {} busy)",
        stats.reports_in.load(std::sync::atomic::Ordering::Relaxed),
        stats.busy.load(std::sync::atomic::Ordering::Relaxed),
    );
}

fn run_send(flags: &Flags) {
    let connect = flags.get("--connect").unwrap_or_else(|| {
        eprintln!("send: --connect is required");
        usage();
    });
    let demo = flags.demo();
    let repeat: usize = flags.num("--repeat", 1);
    let ds = demo_dataset(&demo);
    let frames = demo_frames(&ds);
    let mut client = ClusterClient::connect(&connect).unwrap_or_else(|e| {
        eprintln!("send: connecting {connect}: {e}");
        std::process::exit(1);
    });
    let t = Instant::now();
    for _ in 0..repeat {
        for (mac, mpdu) in &frames {
            if let Err(e) = client.send_report(*mac, mpdu) {
                eprintln!("send: write failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let timeout = Duration::from_secs(flags.num("--drain-timeout", 120));
    let reply = if flags.has("--shutdown") {
        client.shutdown(timeout)
    } else {
        client.drain(timeout)
    }
    .unwrap_or_else(|e| {
        eprintln!("send: drain failed: {e}");
        std::process::exit(1);
    });
    let elapsed = t.elapsed();
    let counters = client.counters();
    println!(
        "sent {} reports ×{repeat} in {:.2?} ({:.0} reports/s)",
        counters.sent,
        elapsed,
        counters.sent as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "cluster: ingested {} enqueued {} classified {} dropped {} busy {} devices {} (evicted {}, re-warmed {})",
        reply.stats.ingested,
        reply.stats.enqueued,
        reply.stats.classified,
        reply.stats.dropped,
        reply.stats.busy,
        reply.stats.device_states,
        reply.stats.devices_evicted,
        reply.stats.devices_rewarmed,
    );
    for d in &reply.decisions {
        println!(
            "  {}  {}  decided_at={:?}",
            d.mac,
            d.verdict.as_str(),
            d.decided_at
        );
    }

    if flags.has("--compare-local") {
        if compare_local(&demo, &ds, repeat, &reply) {
            println!("compare-local: OK — cluster verdicts byte-identical to single-process");
        } else {
            eprintln!("compare-local: MISMATCH — cluster verdicts differ from single-process");
            std::process::exit(1);
        }
    }
}

/// Runs the identical replay through an in-process engine and compares
/// the decision bytes.
fn compare_local(
    demo: &DemoConfig,
    ds: &deepcsi_data::Dataset,
    repeat: usize,
    reply: &DrainReply,
) -> bool {
    let auth = demo_model(demo, ds);
    let replay = ReplaySource::from_dataset(ds);
    let engine = Engine::start(
        EngineConfig {
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        auth,
        ReplaySource::registry(ds),
    );
    for _ in 0..repeat {
        for frame in replay.frames() {
            engine.ingest_frame(frame);
        }
    }
    engine.drain();
    let mut local: Vec<WireDecision> = engine
        .decisions()
        .iter()
        .map(WireDecision::from_engine)
        .collect();
    local.sort_by_key(|d| d.mac.octets());
    engine.shutdown();
    // Byte-level comparison through the wire encoding: the claim is
    // that what a cluster reports is indistinguishable from one
    // process.
    let wire = |decisions: &[WireDecision]| {
        encode_drain_reply(&DrainReply {
            stats: Default::default(),
            decisions: decisions.to_vec(),
        })
    };
    wire(&local) == wire(&reply.decisions)
}
