//! Wire-codec hardening: round-trips over arbitrary MACs, payloads
//! and fragmentation, plus a malformed corpus — truncated frames,
//! lying length prefixes, flipped bits, absurd sizes — asserting the
//! decoder never panics and always poisons cleanly.

use deepcsi_cluster::codec::{
    decode_drain_reply, encode_drain_reply, encode_request, encode_response, CodecError,
    DrainReply, FrameKind, RequestDecoder, RequestFrame, ResponseDecoder, ResponseFrame,
    ResponseStatus, WireDecision, WireStats,
};
use deepcsi_frame::MacAddr;
use proptest::prelude::*;

fn any_mac() -> impl Strategy<Value = MacAddr> {
    proptest::collection::vec(0u8..=255, 6)
        .prop_map(|v| MacAddr::new(v.try_into().expect("6 octets")))
}

fn any_request() -> impl Strategy<Value = RequestFrame> {
    (
        0u8..3,
        0u32..u32::MAX,
        any_mac(),
        proptest::collection::vec(0u8..=255, 0..600),
    )
        .prop_map(|(kind, seq, mac, payload)| RequestFrame {
            kind: match kind {
                0 => FrameKind::Report,
                1 => FrameKind::Drain,
                _ => FrameKind::Shutdown,
            },
            seq,
            mac,
            payload,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_stream_round_trips_under_fragmentation(
        (frames, chunk) in (proptest::collection::vec(any_request(), 1..8), 1usize..64)
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_request(f));
        }
        let mut dec = RequestDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.try_next().expect("clean stream decodes") {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn truncation_never_yields_a_frame(
        (frame, cut) in (any_request(), 0.0f64..1.0)
    ) {
        let wire = encode_request(&frame);
        let keep = ((wire.len() - 1) as f64 * cut) as usize;
        let mut dec = RequestDecoder::new();
        dec.push(&wire[..keep]);
        // A strict prefix is either "need more bytes" or a clean
        // error — never a decoded frame, never a panic.
        if let Ok(Some(got)) = dec.try_next() {
            prop_assert!(false, "decoded {got:?} from a truncated stream");
        }
    }

    #[test]
    fn single_bit_flips_never_panic_or_forge(
        (frame, bit) in (any_request(), 0usize..1_000_000)
    ) {
        let mut wire = encode_request(&frame);
        let nbits = wire.len() * 8;
        let bit = bit % nbits;
        wire[bit / 8] ^= 1 << (bit % 8);
        let mut dec = RequestDecoder::new();
        dec.push(&wire);
        match dec.try_next() {
            // CRC (or an earlier header check) catches the flip…
            Err(_) | Ok(None) => {}
            // …except a flip inside seq/mac/payload bytes *plus* the
            // matching CRC would be two flips; a single flip that
            // still decodes can only be the CRC-protected fields
            // disagreeing — impossible. So a decoded frame here means
            // the flip landed nowhere (can't happen) — fail loudly.
            Ok(Some(got)) => prop_assert!(
                false,
                "single bit flip at {bit} still decoded: {got:?}"
            ),
        }
    }

    #[test]
    fn garbage_streams_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut req = RequestDecoder::new();
        req.push(&bytes);
        while let Ok(Some(_)) = req.try_next() {}
        let mut resp = ResponseDecoder::new();
        resp.push(&bytes);
        while let Ok(Some(_)) = resp.try_next() {}
    }

    #[test]
    fn drain_reply_decode_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..400)) {
        let _ = decode_drain_reply(&bytes);
    }
}

#[test]
fn absurd_length_prefix_is_rejected_before_allocation() {
    // Hand-build a header whose length prefix claims 4 GiB.
    let mut frame = encode_request(&RequestFrame {
        kind: FrameKind::Report,
        seq: 1,
        mac: MacAddr::station(1),
        payload: vec![0; 8],
    });
    frame[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut dec = RequestDecoder::new();
    dec.push(&frame);
    match dec.try_next() {
        Err(CodecError::Oversize(n)) => assert_eq!(n, u32::MAX as usize),
        other => panic!("expected Oversize, got {other:?}"),
    }
    // Poisoned from here on: valid frames no longer parse.
    dec.push(&encode_request(&RequestFrame {
        kind: FrameKind::Report,
        seq: 2,
        mac: MacAddr::station(2),
        payload: Vec::new(),
    }));
    assert!(dec
        .try_next()
        .expect("poisoned decoder is silent")
        .is_none());
}

#[test]
fn every_response_header_byte_is_validated() {
    let good = encode_response(&ResponseFrame {
        kind: FrameKind::Report,
        status: ResponseStatus::Ack,
        seq: 3,
        payload: Vec::new(),
    });
    for (offset, name) in [
        (0usize, "magic"),
        (1, "version"),
        (2, "kind"),
        (3, "status"),
    ] {
        let mut bad = good.clone();
        bad[offset] = 0xEE;
        let mut dec = ResponseDecoder::new();
        dec.push(&bad);
        assert!(dec.try_next().is_err(), "corrupt {name} byte must error");
    }
}

#[test]
fn drain_reply_round_trips_with_full_surface() {
    let reply = DrainReply {
        stats: WireStats {
            ingested: u64::MAX,
            enqueued: 1,
            dropped: 2,
            decode_errors: 9,
            rejected: 3,
            classified: 4,
            device_states: 5,
            devices_evicted: 6,
            devices_rewarmed: 7,
            busy: 8,
        },
        decisions: vec![WireDecision {
            mac: MacAddr::new([0xFF; 6]),
            verdict: deepcsi_serve::Verdict::Reject,
            decided_at: Some(u64::MAX),
            decision: Some((u32::MAX, f64::MIN_POSITIVE, 1.0, u64::MAX)),
        }],
    };
    let bytes = encode_drain_reply(&reply);
    assert_eq!(decode_drain_reply(&bytes).expect("round trip"), reply);
}
