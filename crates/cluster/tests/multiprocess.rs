//! True multi-process integration: spawns real `deepcsi-clusterd`
//! binaries — two engine nodes and a shard router — streams the demo
//! replay through the router with `--compare-local`, and asserts the
//! merged cluster verdicts are byte-identical to a single-process
//! engine. Also exercises snapshot/restore across a process kill and
//! restart.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStderr, ChildStdout, Command, Stdio};

/// Tiny demo config keeps per-process training under a couple seconds.
const DEMO_FLAGS: [&str; 6] = ["--modules", "2", "--snapshots", "10", "--epochs", "1"];

fn clusterd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_deepcsi-clusterd"));
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// A spawned listener process whose `LISTENING <addr>` line has been
/// read back, plus the rest of its pipes for later inspection.
struct Listener {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
    stderr: ChildStderr,
}

impl Listener {
    /// Spawns `deepcsi-clusterd <args...>` and blocks until it prints
    /// `LISTENING <addr>` on stdout.
    #[allow(clippy::zombie_processes)] // reaped via `finish`; panic paths abort the test run
    fn spawn(args: &[&str]) -> Listener {
        let mut child = clusterd().args(args).spawn().expect("spawn clusterd");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let stderr = child.stderr.take().expect("piped stderr");
        let mut line = String::new();
        loop {
            line.clear();
            let n = stdout.read_line(&mut line).expect("read child stdout");
            if n == 0 {
                let status = child.wait().expect("reap exited child");
                panic!("child exited ({status}) before LISTENING (args: {args:?})");
            }
            if let Some(addr) = line.trim().strip_prefix("LISTENING ") {
                return Listener {
                    child,
                    addr: addr.to_string(),
                    stdout,
                    stderr,
                };
            }
        }
    }

    /// Waits for exit and returns (success, remaining stdout, stderr).
    fn finish(mut self) -> (bool, String, String) {
        let status = self.child.wait().expect("wait for child");
        let mut out = String::new();
        self.stdout.read_to_string(&mut out).expect("drain stdout");
        let mut err = String::new();
        self.stderr.read_to_string(&mut err).expect("drain stderr");
        (status.success(), out, err)
    }
}

/// Runs `deepcsi-clusterd send <args...>` to completion.
fn send(args: &[&str]) -> (bool, String, String) {
    let out = clusterd().args(args).output().expect("run send");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn two_node_cluster_matches_single_process_across_processes() {
    let node_a = Listener::spawn(
        &[
            &["node", "--listen", "127.0.0.1:0", "--workers", "1"],
            &DEMO_FLAGS[..],
        ]
        .concat(),
    );
    let node_b = Listener::spawn(
        &[
            &["node", "--listen", "127.0.0.1:0", "--workers", "1"],
            &DEMO_FLAGS[..],
        ]
        .concat(),
    );
    let router = Listener::spawn(&[
        "listen",
        "--listen",
        "127.0.0.1:0",
        "--node",
        &node_a.addr,
        "--node",
        &node_b.addr,
    ]);

    let (ok, out, err) = send(
        &[
            &[
                "send",
                "--connect",
                &router.addr,
                "--compare-local",
                "--shutdown",
            ],
            &DEMO_FLAGS[..],
        ]
        .concat(),
    );
    assert!(ok, "send --compare-local failed:\n{out}\n{err}");
    assert!(
        out.contains("compare-local: OK"),
        "expected byte-identical verdicts:\n{out}\n{err}"
    );
    // Block backpressure end to end: nothing dropped, nothing busy.
    assert!(out.contains("dropped 0"), "zero drops expected:\n{out}");
    assert!(out.contains("busy 0"), "zero busy expected:\n{out}");

    // SHUTDOWN fanned out through the router stops every process.
    for (name, listener) in [("router", router), ("node a", node_a), ("node b", node_b)] {
        let (ok, out, err) = listener.finish();
        assert!(ok, "{name} exited non-zero:\n{out}\n{err}");
    }
}

#[test]
fn killed_node_restores_device_state_from_snapshot() {
    let dir = std::env::temp_dir().join(format!("deepcsi-mp-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let snap = dir.join("node.dcss");
    let snap = snap.to_str().expect("utf-8 temp path");

    // Life 1: serve the replay, then shut down (writes the snapshot).
    let node = Listener::spawn(
        &[
            &[
                "node",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--policy",
                "adaptive",
            ],
            &DEMO_FLAGS[..],
            &["--snapshot-file", snap],
        ]
        .concat(),
    );
    let (ok, out, err) = send(
        &[
            &["send", "--connect", &node.addr, "--shutdown"],
            &DEMO_FLAGS[..],
        ]
        .concat(),
    );
    assert!(ok, "send failed:\n{out}\n{err}");
    let (ok, _, err) = node.finish();
    assert!(ok, "node life 1 exited non-zero:\n{err}");
    assert!(
        err.contains("snapshot written"),
        "expected snapshot write on shutdown:\n{err}"
    );

    // Life 2: restart against the same file — device state comes back
    // without re-learning.
    let node = Listener::spawn(
        &[
            &[
                "node",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--policy",
                "adaptive",
            ],
            &DEMO_FLAGS[..],
            &["--snapshot-file", snap],
        ]
        .concat(),
    );
    let (ok, out, err) = send(
        &[
            &["send", "--connect", &node.addr, "--shutdown"],
            &DEMO_FLAGS[..],
        ]
        .concat(),
    );
    assert!(ok, "send to restarted node failed:\n{out}\n{err}");
    let (ok, _, err) = node.finish();
    assert!(ok, "node life 2 exited non-zero:\n{err}");
    assert!(
        err.contains("restored") && err.contains("device states"),
        "expected restore log line on restart:\n{err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
