//! In-process loopback integration: a listener fanning out to two
//! sharded engine nodes must produce per-device verdicts
//! **byte-identical** to a single-process engine over the same
//! replay, with zero drops at the default (Block) backpressure — the
//! tier's acceptance test.

use deepcsi_cluster::demo::{demo_dataset, demo_frames, demo_model, DemoConfig};
use deepcsi_cluster::{
    encode_drain_reply, ClusterClient, ClusterStats, DrainReply, EngineNode, RouterConfig,
    ShardRouter, WireDecision,
};
use deepcsi_core::FrozenAuthenticator;
use deepcsi_serve::{Engine, EngineConfig, ObsPlane, ObsPlaneConfig, ReplaySource};
use std::sync::Arc;
use std::time::Duration;

const DEMO: DemoConfig = DemoConfig {
    modules: 2,
    snapshots: 12,
    epochs: 1,
};

const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

fn frozen_pipeline() -> (deepcsi_data::Dataset, Arc<FrozenAuthenticator>) {
    let ds = demo_dataset(&DEMO);
    let auth = demo_model(&DEMO, &ds);
    (ds, Arc::new(auth.freeze()))
}

fn wire_bytes(decisions: &[WireDecision]) -> Vec<u8> {
    encode_drain_reply(&DrainReply {
        stats: Default::default(),
        decisions: decisions.to_vec(),
    })
}

fn single_process_decisions(
    ds: &deepcsi_data::Dataset,
    frozen: &Arc<FrozenAuthenticator>,
) -> Vec<WireDecision> {
    let engine = Engine::start_frozen(
        EngineConfig::default(),
        Arc::clone(frozen),
        ReplaySource::registry(ds),
    );
    let replay = ReplaySource::from_dataset(ds);
    for frame in replay.frames() {
        engine.ingest_frame(frame);
    }
    engine.drain();
    let mut decisions: Vec<WireDecision> = engine
        .decisions()
        .iter()
        .map(WireDecision::from_engine)
        .collect();
    decisions.sort_by_key(|d| d.mac.octets());
    engine.shutdown();
    decisions
}

struct Node {
    node: EngineNode,
    engine: Arc<Engine>,
}

fn start_node(ds: &deepcsi_data::Dataset, frozen: &Arc<FrozenAuthenticator>) -> Node {
    let engine = Arc::new(Engine::start_frozen(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        Arc::clone(frozen),
        ReplaySource::registry(ds),
    ));
    let stats = Arc::new(ClusterStats::new(1));
    let node =
        EngineNode::start("127.0.0.1:0", Arc::clone(&engine), stats).expect("bind node listener");
    Node { node, engine }
}

fn stop_node(n: Node) {
    n.node.stop();
    match Arc::try_unwrap(n.engine) {
        Ok(engine) => {
            engine.shutdown();
        }
        Err(_) => panic!("engine still shared after node stop"),
    }
}

#[test]
fn router_over_two_nodes_matches_single_process_byte_for_byte() {
    let (ds, frozen) = frozen_pipeline();
    let reference = single_process_decisions(&ds, &frozen);
    assert!(!reference.is_empty(), "reference run produced decisions");

    let a = start_node(&ds, &frozen);
    let b = start_node(&ds, &frozen);
    let router_stats = Arc::new(ClusterStats::new(2));
    let router = ShardRouter::start(
        RouterConfig {
            listen: "127.0.0.1:0".into(),
            nodes: vec![
                a.node.local_addr().to_string(),
                b.node.local_addr().to_string(),
            ],
            ..RouterConfig::default()
        },
        Arc::clone(&router_stats),
    )
    .expect("bind router");

    let mut client =
        ClusterClient::connect(&router.local_addr().to_string()).expect("connect to router");
    let frames = demo_frames(&ds);
    for (mac, mpdu) in &frames {
        client.send_report(*mac, mpdu).expect("stream report");
    }
    let reply = client.drain(DRAIN_TIMEOUT).expect("merged drain reply");

    // Zero loss at default backpressure, end to end.
    let counters = client.counters();
    assert_eq!(counters.sent, frames.len() as u64);
    assert_eq!(counters.busy, 0, "no BUSY at Block backpressure");
    assert_eq!(counters.dropped, 0, "no DROP at Block backpressure");
    assert_eq!(counters.rejected, 0, "replay frames all decode");
    assert_eq!(reply.stats.dropped, 0);
    assert_eq!(reply.stats.ingested, frames.len() as u64);
    assert_eq!(reply.stats.classified, frames.len() as u64);

    // Both nodes actually served a shard (the replay has ≥ 2 streams).
    assert!(
        reply.decisions.len() >= 2,
        "expected multiple device streams"
    );

    // The headline claim: byte-identical verdicts.
    assert_eq!(
        wire_bytes(&reply.decisions),
        wire_bytes(&reference),
        "cluster verdicts must be byte-identical to single-process"
    );

    drop(client);
    router.stop();
    stop_node(a);
    stop_node(b);
}

#[test]
fn direct_node_connection_speaks_the_same_protocol() {
    let (ds, frozen) = frozen_pipeline();
    let reference = single_process_decisions(&ds, &frozen);

    // One node, no router: same client, same frames, same verdicts.
    let engine = Arc::new(Engine::start_frozen(
        EngineConfig::default(),
        Arc::clone(&frozen),
        ReplaySource::registry(&ds),
    ));
    let stats = Arc::new(ClusterStats::new(2));
    let node = EngineNode::start("127.0.0.1:0", Arc::clone(&engine), Arc::clone(&stats))
        .expect("bind node");
    let mut client =
        ClusterClient::connect(&node.local_addr().to_string()).expect("connect to node");
    for (mac, mpdu) in demo_frames(&ds) {
        client.send_report(mac, &mpdu).expect("stream report");
    }

    // A garbage payload exercises the explicit REJECT response path.
    client
        .send_report(deepcsi_frame::MacAddr::station(0xBAD), &[0xAB; 7])
        .expect("stream garbage");

    let reply = client.drain(DRAIN_TIMEOUT).expect("drain reply");
    assert_eq!(wire_bytes(&reply.decisions), wire_bytes(&reference));
    assert_eq!(
        reply.stats.decode_errors, 1,
        "garbage counted by the engine"
    );
    assert_eq!(client.counters().rejected, 1, "REJECT relayed to client");

    // SHUTDOWN raises the node's flag after a final acked drain.
    assert!(!node.shutdown_requested());
    let last = client.shutdown(DRAIN_TIMEOUT).expect("shutdown ack");
    assert_eq!(wire_bytes(&last.decisions), wire_bytes(&reference));
    assert!(node.shutdown_requested());

    drop(client);
    node.stop();
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
}

#[test]
fn node_plane_scrapes_cluster_counters() {
    let (ds, frozen) = frozen_pipeline();
    let engine = Arc::new(Engine::start_frozen(
        EngineConfig {
            audit: Some(deepcsi_serve::AuditConfig::default()),
            ..EngineConfig::default()
        },
        Arc::clone(&frozen),
        ReplaySource::registry(&ds),
    ));
    let stats = Arc::new(ClusterStats::new(2));
    let plane = ObsPlane::start(
        ObsPlaneConfig {
            listen: "127.0.0.1:0".into(),
            extra: Some(stats.extra_metrics("node")),
            ..ObsPlaneConfig::default()
        },
        &engine,
    )
    .expect("bind plane");
    plane.set_ready(true);
    let node = EngineNode::start("127.0.0.1:0", Arc::clone(&engine), Arc::clone(&stats))
        .expect("bind node");

    let mut client =
        ClusterClient::connect(&node.local_addr().to_string()).expect("connect to node");
    for (mac, mpdu) in demo_frames(&ds) {
        client.send_report(mac, &mpdu).expect("stream report");
    }
    client.drain(DRAIN_TIMEOUT).expect("drain");

    let addr = plane.local_addr().to_string();
    let (code, body) =
        deepcsi_obs::http_get(&addr, "/metrics", Duration::from_secs(5)).expect("GET /metrics");
    assert_eq!(code, 200);
    for needle in [
        "deepcsi_cluster_connections_opened_total",
        "deepcsi_cluster_reports_in_total",
        "deepcsi_cluster_shard_reports",
        "role=\"node\"",
        "conn=\"0\"",
        "deepcsi_ingested_total",
    ] {
        assert!(
            body.contains(needle),
            "missing {needle} in /metrics:\n{body}"
        );
    }
    let (code, json) = deepcsi_obs::http_get(&addr, "/stats.json", Duration::from_secs(5))
        .expect("GET /stats.json");
    assert_eq!(code, 200);
    assert!(json.contains("deepcsi_cluster_reports_in_total"));

    drop(client);
    node.stop();
    plane.shutdown();
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
}
