//! Observability overhead sweep: end-to-end engine throughput with the
//! instrumentation at each of its settings, normalised against a fully
//! dark engine, plus the per-layer profiler's table for the paper CNN —
//! as machine-readable `RESULT obs …` lines (collected by `run_all`
//! into `BENCH_obs.json`; keys documented in `crates/bench/README.md`).
//!
//! The four engine rows:
//!
//! * `dark` — `stage_timing: false`, tracing disabled, no profiler: the
//!   engine takes **zero** timestamps outside the batch-latency
//!   histogram it has always kept. This is the baseline.
//! * `default` — stage histograms on (the out-of-the-box config),
//!   tracing disabled. Budget: ≤0.5% below `dark`.
//! * `sampled` — stage histograms plus span tracing at the default
//!   1-in-8 micro-batch sampling. Budget: ≤3% below `dark`.
//! * `always` — every micro-batch traced *and* the per-layer profiler
//!   attached: the worst case, reported for scale but not asserted.
//!
//! Rounds are interleaved (dark, default, sampled, always, dark, …) and
//! each config keeps its best round, so a background hiccup degrades
//! one round of one config instead of biasing a whole row. The budget
//! assertions run only in full mode — `--tiny`/`--quick` runs are for
//! smoke-testing the harness, not for measuring.
//!
//! A second sweep prices the **live observability plane**:
//!
//! * `live_dark` — no plane, no audit: the baseline.
//! * `live_idle` — audit trail on + scrape server bound + SLO ticker at
//!   its default 1 s cadence, but nobody scraping. Budget: ≤1% below
//!   `live_dark`.
//! * `live_scraped` — `live_idle` plus two loopback scraper threads
//!   hitting `/metrics` and `/audit/tail` at ~10 scrapes/s each
//!   (two orders of magnitude past Prometheus's default 15 s scrape
//!   interval). Budget: ≤3% below `live_dark`.

use deepcsi_bench::result_line;
use deepcsi_bench::serve_bench::{
    engine_reports_per_sec_cfg, engine_reports_per_sec_observed, inputs, paper_cnn, serve_dataset,
};
use deepcsi_obs::{format_op_table, http_get, Profiler, TraceConfig};
use deepcsi_serve::{AuditConfig, Backpressure, EngineConfig, ObsPlane, ObsPlaneConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One row of the overhead sweep.
struct ObsSetting {
    name: &'static str,
    stage_timing: bool,
    trace: TraceConfig,
    profile: bool,
}

fn settings() -> Vec<ObsSetting> {
    vec![
        ObsSetting {
            name: "dark",
            stage_timing: false,
            trace: TraceConfig::default(),
            profile: false,
        },
        ObsSetting {
            name: "default",
            stage_timing: true,
            trace: TraceConfig::default(),
            profile: false,
        },
        ObsSetting {
            name: "sampled",
            stage_timing: true,
            trace: TraceConfig::sampled(),
            profile: false,
        },
        ObsSetting {
            name: "always",
            stage_timing: true,
            trace: TraceConfig::always(),
            profile: true,
        },
    ]
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let (snapshots, repeat, rounds, prof_batches) = if quick {
        (6usize, 1usize, 2usize, 2usize)
    } else {
        (30, 2, 5, 20)
    };

    // --- Engine overhead sweep ---------------------------------------
    println!("== engine throughput vs observability setting ==");
    let ds = serve_dataset(2, snapshots);
    let settings = settings();
    let mut best = vec![0.0f64; settings.len()];
    for _ in 0..rounds {
        for (i, s) in settings.iter().enumerate() {
            let rps = engine_reports_per_sec_cfg(
                &ds,
                EngineConfig {
                    workers: 2,
                    backpressure: Backpressure::Block,
                    stage_timing: s.stage_timing,
                    trace: s.trace.clone(),
                    profile: s.profile,
                    ..EngineConfig::default()
                },
                repeat,
            );
            best[i] = best[i].max(rps);
        }
    }
    let baseline = best[0];
    let mut overheads = vec![0.0f64; settings.len()];
    for (i, s) in settings.iter().enumerate() {
        // Negative "overhead" is measurement noise (the instrumented
        // run happened to win); clamp so the report reads as a cost.
        let pct = ((baseline - best[i]) / baseline * 100.0).max(0.0);
        overheads[i] = pct;
        println!(
            "{:<8} {:>9.0} reports/s   overhead {:>5.2}%",
            s.name, best[i], pct
        );
        result_line("obs", &format!("reports_per_sec_{}", s.name), best[i]);
        if i > 0 {
            result_line("obs", &format!("overhead_{}_pct", s.name), pct);
        }
    }

    // --- Live-plane overhead sweep ------------------------------------
    // Same interleaved best-of-rounds protocol; the engine config is
    // fully dark in every row (the plane is priced alone, not stacked on
    // stage timing or tracing).
    println!("\n== engine throughput vs live observability plane ==");
    let live_names = ["live_dark", "live_idle", "live_scraped"];
    type LiveObservers = Option<(ObsPlane, Arc<AtomicBool>, Vec<std::thread::JoinHandle<()>>)>;
    let mut live_best = [0.0f64; 3];
    for _ in 0..rounds {
        for (i, _) in live_names.iter().enumerate() {
            let rps = engine_reports_per_sec_observed(
                &ds,
                EngineConfig {
                    workers: 2,
                    backpressure: Backpressure::Block,
                    audit: (i > 0).then(AuditConfig::default),
                    ..EngineConfig::default()
                },
                repeat,
                |engine| -> LiveObservers {
                    if i == 0 {
                        return None;
                    }
                    let plane = ObsPlane::start(
                        ObsPlaneConfig {
                            listen: "127.0.0.1:0".to_string(),
                            ..ObsPlaneConfig::default()
                        },
                        engine,
                    )
                    .expect("bind live plane");
                    plane.set_ready(true);
                    let stop = Arc::new(AtomicBool::new(false));
                    let scrapers: Vec<_> = if i == 2 {
                        let addr = plane.local_addr().to_string();
                        ["/metrics", "/audit/tail?n=100"]
                            .into_iter()
                            .map(|path| {
                                let addr = addr.clone();
                                let stop = Arc::clone(&stop);
                                std::thread::spawn(move || {
                                    while !stop.load(Ordering::Relaxed) {
                                        let _ = http_get(&addr, path, Duration::from_secs(2));
                                        // ~10 scrapes/s per endpoint —
                                        // still ~100× Prometheus's
                                        // default 15 s scrape interval.
                                        std::thread::sleep(Duration::from_millis(100));
                                    }
                                })
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    Some((plane, stop, scrapers))
                },
                |observers: LiveObservers| {
                    if let Some((plane, stop, scrapers)) = observers {
                        stop.store(true, Ordering::Relaxed);
                        for s in scrapers {
                            let _ = s.join();
                        }
                        plane.shutdown();
                    }
                },
            );
            live_best[i] = live_best[i].max(rps);
        }
    }
    let live_baseline = live_best[0];
    let mut live_over = [0.0f64; 3];
    for (i, name) in live_names.iter().enumerate() {
        let pct = ((live_baseline - live_best[i]) / live_baseline * 100.0).max(0.0);
        live_over[i] = pct;
        println!(
            "{:<13} {:>9.0} reports/s   overhead {:>5.2}%",
            name, live_best[i], pct
        );
        result_line("obs", &format!("reports_per_sec_{name}"), live_best[i]);
        if i > 0 {
            result_line("obs", &format!("overhead_{name}_pct"), pct);
        }
    }

    // --- Per-layer profiler: the paper CNN ---------------------------
    println!("\n== per-layer profile: paper_cnn, batch 32 × {prof_batches} ==");
    let w = paper_cnn();
    let xs = inputs(&w, 32);
    let frozen = w.net.freeze();
    let mut ctx = frozen.ctx();
    let _ = frozen.infer_batch(&xs, &mut ctx); // warm-up, unprofiled
    ctx.set_profiler(Profiler::new());
    for _ in 0..prof_batches {
        std::hint::black_box(frozen.infer_batch(&xs, &mut ctx));
    }
    let ops = ctx.take_profiler().expect("profiler attached").into_ops();
    print!("{}", format_op_table(&ops));
    let total_ns: u64 = ops.iter().map(|o| o.ns).sum();
    let samples: u64 = ops.first().map_or(0, |o| o.samples);
    result_line(
        "obs",
        "profile_paper_cnn_ns_per_sample",
        total_ns as f64 / samples.max(1) as f64,
    );
    for (i, op) in ops.iter().enumerate() {
        result_line(
            "obs",
            &format!("profile_paper_cnn_op{i}_{}_share_pct", op.name),
            100.0 * op.ns as f64 / total_ns.max(1) as f64,
        );
    }

    // --- Budget assertions (full mode only) --------------------------
    if !quick {
        // The stage-histogram budget is ≈0% (a handful of `Instant`
        // reads per micro-batch); allow 1% so scheduler noise on shared
        // hosts can't fail a healthy build. Sampled tracing carries the
        // ISSUE's 3% budget directly.
        assert!(
            overheads[1] <= 1.0,
            "stage-timing overhead {:.2}% exceeds the ≈0% budget",
            overheads[1]
        );
        assert!(
            overheads[2] <= 3.0,
            "sampled-tracing overhead {:.2}% exceeds the 3% budget",
            overheads[2]
        );
        // Live plane: an idle plane (audit appends + SLO ticks) must be
        // counter noise; continuous loopback scraping may cost a little
        // more but stays within the 3% serving budget.
        assert!(
            live_over[1] <= 1.0,
            "idle live plane (audit + SLO) overhead {:.2}% exceeds the 1% budget",
            live_over[1]
        );
        assert!(
            live_over[2] <= 3.0,
            "scraped-under-load overhead {:.2}% exceeds the 3% budget",
            live_over[2]
        );
        println!(
            "\nbudgets ok: default {:.2}% (≤1%), sampled {:.2}% (≤3%), \
             live idle {:.2}% (≤1%), live scraped {:.2}% (≤3%)",
            overheads[1], overheads[2], live_over[1], live_over[2]
        );
    }
}
