//! **Fig. 14** — time evolution of Ṽ in static conditions.
//!
//! Paper: plots `[Ṽ]_{m,s}` over (subcarrier, time) for the first 75
//! sounded sub-channels; the second-stream columns are visibly noisier
//! because of quantization-error propagation. We print a decimated
//! magnitude grid per element plus temporal-stability summaries.

use deepcsi_bench::result_line;
use deepcsi_data::{generate_trace, GenConfig, TraceKind, TraceSpec};
use deepcsi_impair::DeviceId;

#[allow(clippy::needless_range_loop)] // stream index addresses parallel arrays
fn main() {
    let cfg = GenConfig {
        snapshots_per_trace: 32,
        ..GenConfig::default()
    };
    let trace = generate_trace(
        &cfg,
        &TraceSpec {
            module: DeviceId(0),
            beamformee: 1,
            n_rx: 2,
            rx_position: 3,
            kind: TraceKind::D1Static { position: 3 },
        },
    );
    let series: Vec<_> = trace.snapshots.iter().map(|fb| fb.reconstruct()).collect();

    println!("Fig. 14 — |Ṽ| over (subcarrier, time), static trace, module 0\n");
    for m in 0..3 {
        for s in 0..2 {
            println!(
                "[Ṽ]_{},{} (rows = every 8th of the first 75 tones, cols = time):",
                m + 1,
                s + 1
            );
            for tone in (0..75).step_by(8) {
                let row: Vec<String> = series
                    .iter()
                    .step_by(2)
                    .map(|v| format!("{:.2}", v.v[tone][(m, s)].abs()))
                    .collect();
                println!("  k{:>4}: {}", v_tone(&trace, tone), row.join(" "));
            }
        }
    }

    // Temporal stability: std over time of each element, averaged over
    // tones — stream 2 should be noisier (the visible effect in Fig. 14).
    println!("\ntemporal std (mean over first 75 tones):");
    let mut per_stream = [0.0f64; 2];
    for s in 0..2 {
        let mut total = 0.0;
        for m in 0..3 {
            let mut acc = 0.0;
            for tone in 0..75 {
                let vals: Vec<f64> = series.iter().map(|v| v.v[tone][(m, s)].abs()).collect();
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let var =
                    vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / vals.len() as f64;
                acc += var.sqrt();
            }
            let std = acc / 75.0;
            println!("  [Ṽ]_{},{}: {:.4}", m + 1, s + 1, std);
            total += std;
        }
        per_stream[s] = total / 3.0;
        result_line(
            "fig14",
            &format!("temporal-std-stream{}", s + 1),
            per_stream[s],
        );
    }
    println!(
        "\nstream2/stream1 temporal-noise ratio: {:.2} (paper: column 2 visibly noisier)",
        per_stream[1] / per_stream[0]
    );
    result_line(
        "fig14",
        "stream2-over-stream1",
        per_stream[1] / per_stream[0],
    );
}

/// Sounded tone index at a position (labels the rows like the paper's
/// −122…−47 axis).
fn v_tone(trace: &deepcsi_data::Trace, pos: usize) -> i32 {
    trace.snapshots[0].subcarriers[pos]
}
