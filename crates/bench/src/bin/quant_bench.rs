//! Int8 vs f32 serving comparison: micro-kernel and end-to-end model
//! throughput, top-1 agreement on a synthetic eval set, and per-layer
//! quantization error — as machine-readable `RESULT quant …` lines
//! (collected by `run_all` into `BENCH_quant.json`; keys documented in
//! `crates/bench/README.md`).
//!
//! The int8 path wins where the f32 kernels are bandwidth-bound: a
//! quantized weight matrix streams a quarter of the bytes per batch.
//! The agreement section replays the `deepcsi-served` recipe — train
//! the demo classifier on a synthetic D1 capture, calibrate on the
//! train split, compare verdict-feeding top-1s across the whole set.

use deepcsi_bench::result_line;
use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, GenConfig, InputSpec};
use deepcsi_nn::{Conv2d, Dense, FrozenModel, Network, QuantSpec, Tensor, TrainConfig};
use std::time::Instant;

/// Deterministic pseudo-random inputs for a shape.
fn inputs(shape: &[usize], batch: usize) -> Vec<Tensor> {
    let len: usize = shape.iter().product();
    (0..batch)
        .map(|s| {
            Tensor::from_vec(
                (0..len)
                    .map(|e| ((e * 31 + s * 7) % 13) as f32 * 0.1 - 0.6)
                    .collect(),
                shape.to_vec(),
            )
        })
        .collect()
}

/// Seconds per `infer_batch` call with a warm context — best of 5
/// windows (the minimum is robust against preemption on shared hosts).
fn time_batch(model: &FrozenModel, xs: &[Tensor], reps: usize) -> f64 {
    let mut ctx = model.ctx();
    let _ = model.infer_batch(xs, &mut ctx); // warm-up + buffer high-water mark
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(model.infer_batch(xs, &mut ctx));
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Benchmarks one workload at both precisions, printing and emitting
/// `<key>_ns_per_report_{f32,int8}` + `<key>_speedup`.
fn bench_workload(key: &str, net: &Network, shape: &[usize], batch: usize, reps: usize) -> f64 {
    let xs = inputs(shape, batch);
    let f32_model = net.freeze();
    let spec = QuantSpec::calibrate(&f32_model, &xs).expect("calibrate");
    let int8_model = net.freeze_int8(&spec).expect("freeze_int8");

    let f32_s = time_batch(&f32_model, &xs, reps);
    let int8_s = time_batch(&int8_model, &xs, reps);
    let per = |s: f64| s * 1e9 / batch as f64;
    let speedup = f32_s / int8_s;
    println!(
        "{key:<12} f32 {:>9.0} ns/report   int8 {:>9.0} ns/report   speedup {speedup:.2}x",
        per(f32_s),
        per(int8_s),
    );
    result_line("quant", &format!("{key}_ns_per_report_f32"), per(f32_s));
    result_line("quant", &format!("{key}_ns_per_report_int8"), per(int8_s));
    result_line("quant", &format!("{key}_speedup"), speedup);
    speedup
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let batch = 64usize;
    let (dense_reps, conv_reps, model_reps, snapshots, epochs) = if quick {
        (10usize, 3usize, 3usize, 12usize, 3usize)
    } else {
        (50, 10, 10, 30, 6)
    };

    // --- micro-kernels: one conv layer, one dense layer --------------
    println!("== int8 vs f32 micro-kernels (batch {batch}) ==");
    let mut dense = Network::new();
    dense.push(Dense::new(2048, 2048, 1));
    bench_workload("dense", &dense, &[2048], batch, dense_reps);

    let mut conv = Network::new();
    conv.push(Conv2d::new(128, 128, (1, 7), 2));
    bench_workload("conv", &conv, &[128, 1, 117], batch, conv_reps);

    // --- end-to-end models (conv/dense int8, activations f32) --------
    println!("\n== int8 vs f32 end-to-end models (batch {batch}) ==");
    let fast = ModelConfig::fast(10, 1).build((5, 1, 117));
    bench_workload("fast_cnn", &fast, &[5, 1, 117], batch, model_reps);
    if !quick {
        let paper = ModelConfig::paper(10, 1).build((5, 1, 234));
        bench_workload("paper_cnn", &paper, &[5, 1, 234], batch, model_reps.min(4));
    }

    // --- accuracy parity on the synthetic eval set -------------------
    println!("\n== top-1 agreement on a synthetic D1 capture ==");
    let ds = generate_d1(&GenConfig {
        num_modules: 3,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    });
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let split = d1_split(&ds, D1Set::S1, &[1, 2], &spec);
    let result = run_experiment(
        &ExperimentConfig {
            model: ModelConfig::demo(3),
            train: TrainConfig {
                epochs,
                batch_size: 64,
                learning_rate: 2e-3,
                seed: 5,
                ..TrainConfig::default()
            },
        },
        &split,
    );
    println!(
        "demo classifier test accuracy {:.2}%",
        result.accuracy * 100.0
    );
    let auth = Authenticator::new(result.network, spec);

    // Calibrate on the train split, evaluate agreement over the whole
    // capture (train + held-out positions).
    let calib: Vec<Tensor> = split.train.x.clone();
    let qspec = QuantSpec::calibrate(&auth.network().freeze(), &calib).expect("calibrate");
    let (int8_model, layers) = auth
        .network()
        .freeze_int8_report(&qspec)
        .expect("freeze_int8");
    let f32_model = auth.network().freeze();

    let all: Vec<Tensor> = ds
        .traces
        .iter()
        .flat_map(|t| t.snapshots.iter())
        .map(|fb| auth.tensorize(fb))
        .collect();
    let (mut ctx, mut qctx) = (f32_model.ctx(), int8_model.ctx());
    let mut agree = 0usize;
    let mut logit_err_max = 0.0f32;
    for chunk in all.chunks(64) {
        let want = f32_model.infer_batch(chunk, &mut ctx);
        let got = int8_model.infer_batch(chunk, &mut qctx);
        for (w, g) in want.iter().zip(&got) {
            if w.argmax() == g.argmax() {
                agree += 1;
            }
            for (&wv, &gv) in w.as_slice().iter().zip(g.as_slice()) {
                logit_err_max = logit_err_max.max((wv - gv).abs());
            }
        }
    }
    let agreement = agree as f64 / all.len() as f64;
    println!(
        "top-1 agreement {agreement:.4} ({agree}/{} reports)   max |logit err| {logit_err_max:.4}",
        all.len()
    );
    result_line("quant", "top1_agreement", agreement);
    result_line("quant", "logit_err_max", f64::from(logit_err_max));
    result_line("quant", "eval_reports", all.len() as f64);

    // --- per-layer quantization error --------------------------------
    println!(
        "\n== per-layer quantization (calibrated on {} reports) ==",
        calib.len()
    );
    for info in &layers {
        println!(
            "layer {:>2} {:<8} w_scale_max {:.5}  w_err_max {:.5}  act {:.5} → {:.5}",
            info.layer,
            info.name,
            info.weight_scale_max,
            info.weight_err_max,
            info.in_scale,
            info.out_scale
        );
        result_line(
            "quant",
            &format!("layer{}_{}_weight_err_max", info.layer, info.name),
            f64::from(info.weight_err_max),
        );
    }
}
