//! **Fig. 11** — training on one beamformee and testing on the other.
//!
//! Paper: accuracy collapses to ≈25 % because Ṽ carries the hardware
//! signature of *both* link ends: the learned fingerprint entangles the
//! beamformee's own RX-chain response.

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_data::d1_cross_beamformee;

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    println!("Fig. 11 — cross-beamformee transfer (set S1 configuration)\n");
    for (train_bf, test_bf) in [(1u8, 2u8), (2u8, 1u8)] {
        let split = d1_cross_beamformee(&ds, train_bf, test_bf, &scale.spec);
        run_labeled(
            &scale,
            &split,
            "fig11",
            &format!("train-bf{train_bf}-test-bf{test_bf}"),
            true,
        );
    }
}
