//! **Fig. 17** — beamformer identification under mobility (dataset D2,
//! Table II sets).
//!
//! Paper: (a) train/test on the full path: 82.56 %; (b) disjoint
//! sub-paths: 41.15 %; (c) S5 static→mobility: 20.50 %; (d) S6
//! mobility→static: 88.12 %. Training-set variability is what buys
//! robustness.

use deepcsi_bench::{d2_cached, run_labeled, FigureScale};
use deepcsi_data::{d2_split, D2Set};

fn main() {
    let scale = FigureScale::from_args();
    let ds = d2_cached(&scale.gen);
    println!("Fig. 17 — mobility (D2), beamformee 1, stream 0\n");
    let cases = [
        (D2Set::S4, "S4-full-path"),
        (D2Set::S4SubPath, "S4-subpaths"),
        (D2Set::S5, "S5-static-to-mobile"),
        (D2Set::S6, "S6-mobile-to-static"),
    ];
    for (set, label) in cases {
        let split = d2_split(&ds, set, &[1], &scale.spec);
        run_labeled(&scale, &split, "fig17", label, true);
    }
}
