//! Decision-policy comparison: reports-to-verdict and verdict accuracy
//! for every [`deepcsi_serve::DecisionPolicy`] implementation, on a
//! clean synthetic capture and on the same capture re-run through a
//! degraded channel (low SNR + heavy phase noise from `crates/impair`).
//!
//! Emits machine-readable `RESULT policy <key> <value>` lines that
//! `run_all` collects into `bench_results/BENCH_policy.json` — the
//! headline comparison being `confidence_clean_reports_to_verdict_p50`
//! against `fixed_clean_reports_to_verdict_p50` at equal
//! `*_clean_accept_rate`.

use deepcsi_bench::result_line;
use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_impair::ImpairmentProfile;
use deepcsi_nn::TrainConfig;
use deepcsi_serve::{
    Backpressure, DecisionPolicyConfig, Engine, EngineConfig, PolicyKind, ReplaySource, Verdict,
};
use std::time::Instant;

fn spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

/// The same capture campaign under a much worse channel: identical
/// device fingerprints (same modules, same stream MACs), but low SNR
/// and heavy per-packet phase noise.
fn impaired(gen: &GenConfig) -> GenConfig {
    GenConfig {
        profile: ImpairmentProfile {
            snr_db: 8.0,
            snr_jitter_db: 3.0,
            phase_noise_std_rad: 0.15,
            ..ImpairmentProfile::default()
        },
        ..gen.clone()
    }
}

fn train(ds: &Dataset, modules: usize, epochs: usize) -> Authenticator {
    let spec = spec();
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(modules),
        train: TrainConfig {
            epochs,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let t = Instant::now();
    let result = run_experiment(&cfg, &split);
    println!(
        "trained demo classifier: {:.1}% per-sample accuracy ({:.1?})",
        result.accuracy * 100.0,
        t.elapsed()
    );
    result_line("policy", "per_sample_accuracy", result.accuracy);
    Authenticator::new(result.network, spec)
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            // Tolerate the figure-suite flags run_all forwards.
            "--paper" => {}
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let (snapshots, epochs) = if quick { (20, 4) } else { (40, 6) };

    let gen = GenConfig {
        num_modules: 3,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    };
    let clean = generate_d1(&gen);
    let degraded = generate_d1(&impaired(&gen));
    let auth = train(&clean, 3, epochs);

    println!(
        "\n{:<12} {:<9} {:>11} {:>8} {:>8} {:>8} {:>8}",
        "policy", "capture", "accept_rate", "rejects", "unknown", "rtv_p50", "rtv_p99"
    );
    for kind in [
        PolicyKind::FixedMajority,
        PolicyKind::ConfidenceWeighted,
        PolicyKind::AdaptiveThreshold,
    ] {
        for (ds, tag) in [(&clean, "clean"), (&degraded, "impaired")] {
            let replay = ReplaySource::from_dataset(ds);
            let registry = ReplaySource::registry(ds);
            let engine = Engine::start(
                EngineConfig {
                    workers: 2,
                    backpressure: Backpressure::Block,
                    decision: DecisionPolicyConfig {
                        kind,
                        ..DecisionPolicyConfig::default()
                    },
                    ..EngineConfig::default()
                },
                auth.clone(),
                registry.clone(),
            );
            for frame in replay.frames() {
                engine.ingest_frame(frame);
            }
            let report = engine.shutdown();

            // Every stream here is a genuine registered device, so the
            // correct verdict is Accept: the accept rate *is* the
            // verdict accuracy (an impaired-capture Reject/Unknown is a
            // false alarm — the cost of a stricter policy under a bad
            // channel).
            let count =
                |v: Verdict| report.decisions.iter().filter(|d| d.verdict == v).count() as f64;
            let accept_rate = count(Verdict::Accept) / report.decisions.len() as f64;
            let p50 = report.stats.reports_to_verdict_p50;
            let p99 = report.stats.reports_to_verdict_p99;
            println!(
                "{:<12} {:<9} {:>10.0}% {:>8} {:>8} {:>8} {:>8}",
                kind.to_string(),
                tag,
                accept_rate * 100.0,
                count(Verdict::Reject),
                count(Verdict::Unknown),
                p50.map_or("n/a".into(), |v| v.to_string()),
                p99.map_or("n/a".into(), |v| v.to_string()),
            );
            result_line("policy", &format!("{kind}_{tag}_accept_rate"), accept_rate);
            if let Some(p50) = p50 {
                result_line(
                    "policy",
                    &format!("{kind}_{tag}_reports_to_verdict_p50"),
                    p50 as f64,
                );
            }
            if let Some(p99) = p99 {
                result_line(
                    "policy",
                    &format!("{kind}_{tag}_reports_to_verdict_p99"),
                    p99 as f64,
                );
            }
        }
    }
}
