//! **Fig. 7** — hyper-parameter selection: validation accuracy (set S1,
//! beamformee 1) as a function of (a) the number of convolutional layers
//! and (b) the number of filters per layer, against model size.
//!
//! Paper: accuracy is nearly flat in depth (2–7 layers) and rises gently
//! with filter count; (5 layers, 128 filters) is picked by the elbow
//! method.

use deepcsi_bench::{d1_cached, pct, result_line, FigureScale};
use deepcsi_core::{run_experiment, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, D1Set};
use deepcsi_nn::TrainConfig;

fn main() {
    let mut scale = FigureScale::from_args();
    // The hyper-parameter sweep trains 11 models; shrink the dataset.
    if !scale.paper_model {
        scale.gen.num_modules = 6;
        scale.gen.snapshots_per_trace = 60;
    }
    // Depth 7 needs the full 234-tone width (234 → … → 1 over 7 pools),
    // exactly like the paper's input.
    scale.spec = deepcsi_data::InputSpec::paper_default();
    let ds = d1_cached(&scale.gen);
    let split = d1_split(&ds, D1Set::S1, &[1], &scale.spec);
    let classes = scale.gen.num_modules as usize;

    let kernels_for = |n: usize| -> Vec<usize> {
        // The paper's kernel schedule 7,7,7,5,3 extended/truncated.
        let base = [7usize, 7, 7, 5, 3, 3, 3];
        base[..n].to_vec()
    };

    let run = |model: ModelConfig, label: &str| {
        let cfg = ExperimentConfig {
            model,
            train: TrainConfig {
                epochs: scale.epochs,
                batch_size: 64,
                learning_rate: scale.learning_rate,
                seed: 7,
                ..TrainConfig::default()
            },
        };
        let t = std::time::Instant::now();
        // Fig. 7 reports *validation* accuracy, so evaluate on val.
        let probe_split = deepcsi_data::Split {
            train: split.train.clone(),
            val: split.val.clone(),
            test: split.val.clone(),
        };
        let mut net_probe = cfg.model.build_for(&split.train.x[0]);
        let params = net_probe.num_params();
        let result = run_experiment(&cfg, &probe_split);
        println!(
            "{label:<28} val acc {:>8}  params {:>9}  ({:.1?})",
            pct(result.accuracy),
            params,
            t.elapsed()
        );
        result_line("fig07", &format!("{label}-acc"), result.accuracy);
        result_line("fig07", &format!("{label}-params"), params as f64);
    };

    println!("Fig. 7a — validation accuracy vs number of conv layers (S1)\n");
    for n_conv in 2..=7usize {
        let filters = if scale.paper_model { 128 } else { 24 };
        let model = ModelConfig {
            conv_filters: vec![filters; n_conv],
            conv_kernels: kernels_for(n_conv),
            attention_kernel: 7,
            dense_units: vec![128, 64],
            dropout_rates: vec![0.5, 0.2],
            num_classes: classes,
            seed: 7,
        };
        run(model, &format!("nconv{n_conv}"));
    }

    println!("\nFig. 7b — validation accuracy vs filters per layer (5 conv layers)\n");
    let filter_sweep: &[usize] = if scale.paper_model {
        &[16, 32, 64, 128, 256]
    } else {
        &[8, 16, 24, 32, 48]
    };
    for &filters in filter_sweep {
        let model = ModelConfig {
            conv_filters: vec![filters; 5],
            conv_kernels: vec![7, 7, 7, 5, 3],
            attention_kernel: 7,
            dense_units: vec![128, 64],
            dropout_rates: vec![0.5, 0.2],
            num_classes: classes,
            seed: 7,
        };
        run(model, &format!("filters{filters}"));
    }
}
