//! **Fig. 9** — confusion matrices when the training set pools the
//! feedback of *both* beamformees.
//!
//! Paper: S1 97.62 %, S2 77.38 %, S3 47.28 % — slightly better than
//! single-beamformee training on S2/S3, at the cost of trusting another
//! station's reports.

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_data::{d1_split, D1Set};

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    println!("Fig. 9 — mixed beamformees (train/test on both), stream 0\n");
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        let split = d1_split(&ds, set, &[1, 2], &scale.spec);
        run_labeled(&scale, &split, "fig09", &format!("{set:?}-mixed"), true);
    }
}
