//! **Fig. 13** — probability density of the Ṽ quantization error for the
//! two standard MU codebooks, per (TX antenna, spatial stream) element.
//!
//! Paper: the recursive structure of Algorithm 1 propagates quantization
//! error from the first reconstructed stream into the second, so every
//! `[Ṽ]_{m,2}` element reconstructs worse than `[Ṽ]_{m,1}`; the
//! (bψ=7, bφ=9) codebook is roughly 4× more accurate than (bψ=5, bφ=7).
//! This is a pure-math experiment (no training): we simulate MU-MIMO
//! soundings, quantize, reconstruct and histogram the element errors.

use deepcsi_bench::result_line;
use deepcsi_bfi::{BeamformingFeedback, VSeries};
use deepcsi_channel::{AntennaArray, ChannelModel, Environment};
use deepcsi_data::GenConfig;
use deepcsi_phy::{Codebook, MimoConfig, SubcarrierLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of simulated soundings (the paper uses 100 000 channel
/// realisations; scaled down by default for laptop runs).
const NUM_SOUNDINGS: usize = 400; // × 234 tones ≈ 94 k matrix samples

#[allow(clippy::needless_range_loop)] // stream index addresses parallel arrays
fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let n_soundings = if paper_scale { 2000 } else { NUM_SOUNDINGS };

    let gen = GenConfig::default();
    let env = Environment::fig6(gen.env_id);
    let layout = SubcarrierLayout::vht20(); // small layout → more positions
    let tones = layout.indices().to_vec();
    let model = ChannelModel::new(&env, layout);
    let mimo = MimoConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(13);

    for cb in [Codebook::MU_LOW, Codebook::MU_HIGH] {
        // error histogram per element (3 antennas × 2 streams).
        let mut errors: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for _ in 0..n_soundings {
            // Random TX/RX placement inside the room for channel variety.
            let tx = AntennaArray::new(
                deepcsi_channel::Point2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-0.2..1.0)),
                0.0,
                env.half_wavelength(),
                3,
            );
            let rx = AntennaArray::new(
                deepcsi_channel::Point2::new(rng.gen_range(-1.5..1.5), rng.gen_range(2.5..3.5)),
                0.0,
                env.half_wavelength(),
                2,
            );
            let cfr = model.cfr(&tx, &rx, &mut rng);
            let exact = VSeries::exact_from_cfr(&cfr, &tones, mimo);
            let quantized = BeamformingFeedback::from_cfr(&cfr, &tones, mimo, cb).reconstruct();
            for (e, q) in exact.v.iter().zip(quantized.v.iter()) {
                for m in 0..3 {
                    for s in 0..2 {
                        errors[m * 2 + s].push((e[(m, s)] - q[(m, s)]).abs());
                    }
                }
            }
        }

        println!("\n=== Fig. 13 ({cb}) — Ṽ quantization error PDFs ===");
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "element", "mean", "p50", "p95"
        );
        for m in 0..3 {
            for s in 0..2 {
                let v = &mut errors[m * 2 + s];
                v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let p50 = v[v.len() / 2];
                let p95 = v[v.len() * 95 / 100];
                println!(
                    "  [Ṽ]_{},{}  {:>12.3e} {:>12.3e} {:>12.3e}",
                    m + 1,
                    s + 1,
                    mean,
                    p50,
                    p95
                );
                result_line(
                    "fig13",
                    &format!("{cb}-V{}{}-mean", m + 1, s + 1).replace(' ', ""),
                    mean,
                );
            }
        }
        // Histogram for the first antenna, both streams (the paper's PDF).
        println!("  histogram (20 bins over [0, p99]):");
        for s in 0..2 {
            let v = &errors[s];
            let p99 = v[v.len() * 99 / 100];
            let mut bins = [0usize; 20];
            for &e in v.iter() {
                let b = ((e / p99 * 20.0) as usize).min(19);
                bins[b] += 1;
            }
            let dens: Vec<String> = bins
                .iter()
                .map(|&c| format!("{:.2}", c as f64 / v.len() as f64))
                .collect();
            println!("   stream {}: {}", s + 1, dens.join(" "));
        }

        // Headline check: stream-2 elements reconstruct worse.
        let mean_of = |idx: usize| errors[idx].iter().sum::<f64>() / errors[idx].len() as f64;
        let s1: f64 = (0..3).map(|m| mean_of(m * 2)).sum::<f64>() / 3.0;
        let s2: f64 = (0..3).map(|m| mean_of(m * 2 + 1)).sum::<f64>() / 3.0;
        println!(
            "  mean error stream1 {:.3e}  vs stream2 {:.3e}  (ratio {:.2})",
            s1,
            s2,
            s2 / s1
        );
        result_line(
            "fig13",
            &format!("{cb}-stream2-over-stream1").replace(' ', ""),
            s2 / s1,
        );
    }
}
