//! Calibration probe: checks the qualitative orderings every figure
//! depends on at reduced scale, printing a compact report.
//!
//! Not a paper figure — a development tool for tuning
//! `ImpairmentProfile` and `GenConfig` defaults (DESIGN.md §4).

use deepcsi_bench::{pct, FigureScale};
use deepcsi_core::{baseline, run_experiment};
use deepcsi_data::{
    d1_cross_beamformee, d1_split, d2_split, generate_d1, generate_d2, D1Set, D2Set, InputSpec,
};
use std::time::Instant;

fn main() {
    let mut scale = FigureScale::from_args();
    scale.gen.num_modules = 6;
    scale.gen.snapshots_per_trace = 60;
    scale.epochs = 8;

    let t0 = Instant::now();
    let d1 = generate_d1(&scale.gen);
    println!(
        "D1 generated in {:.1?} ({} traces)",
        t0.elapsed(),
        d1.traces.len()
    );
    let t0 = Instant::now();
    let d2 = generate_d2(&scale.gen);
    println!(
        "D2 generated in {:.1?} ({} traces)",
        t0.elapsed(),
        d2.traces.len()
    );

    let spec = scale.spec.clone();
    let run = |name: &str, split: &deepcsi_data::Split| {
        let t = Instant::now();
        let r = run_experiment(&scale.experiment(7), split);
        println!(
            "{name:<24} acc {:>8}   (train {:>5}, test {:>5}, {:.1?})",
            pct(r.accuracy),
            split.train.len(),
            split.test.len(),
            t.elapsed()
        );
        r.accuracy
    };

    let s1 = run("S1 bf1 stream0", &d1_split(&d1, D1Set::S1, &[1], &spec));
    let s2 = run("S2 bf1 stream0", &d1_split(&d1, D1Set::S2, &[1], &spec));
    let s3 = run("S3 bf1 stream0", &d1_split(&d1, D1Set::S3, &[1], &spec));

    let swap = run(
        "S1 train bf1 test bf2",
        &d1_cross_beamformee(&d1, 1, 2, &spec),
    );

    let cleaned = baseline::cleaned_spec(&spec);
    let s1_clean = run(
        "S1 offset-cleaned",
        &d1_split(&d1, D1Set::S1, &[1], &cleaned),
    );

    let stream1 = InputSpec {
        streams: vec![1],
        ..spec.clone()
    };
    let s1_str1 = run("S1 stream1", &d1_split(&d1, D1Set::S1, &[1], &stream1));
    let s3_str1 = run("S3 stream1", &d1_split(&d1, D1Set::S3, &[1], &stream1));

    let s4 = run("S4 mobility bf2", &d2_split(&d2, D2Set::S4, &[2], &spec));
    let s5 = run(
        "S5 static→mobile bf2",
        &d2_split(&d2, D2Set::S5, &[2], &spec),
    );
    let s6 = run(
        "S6 mobile→static bf2",
        &d2_split(&d2, D2Set::S6, &[2], &spec),
    );

    println!("\n=== ordering checks (paper-shape expectations) ===");
    let check =
        |name: &str, ok: bool| println!("{:<44} {}", name, if ok { "OK" } else { "VIOLATED" });
    check("S1 > S2 > S3", s1 > s2 && s2 > s3);
    check("S1 high (>0.9)", s1 > 0.9);
    check("S3 well below S1", s3 < s1 - 0.2);
    check("cross-beamformee collapses (< S3)", swap < s3);
    check("offset cleaning hurts (< S1)", s1_clean < s1 - 0.05);
    check("cleaning keeps signal (> chance)", s1_clean > 2.0 / 6.0);
    check("stream1 S1 still high", s1_str1 > 0.8);
    check("stream1 S3 collapses (< stream0 S3)", s3_str1 < s3);
    check("S4 mobility works (>0.6)", s4 > 0.6);
    check("S5 static→mobile fails (< S4)", s5 < s4 - 0.2);
    check("S6 mobile→static works (> S5)", s6 > s5);
}
