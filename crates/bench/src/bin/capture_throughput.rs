//! Capture-layer parse throughput: frames/s and bytes/s through the
//! pcap and pcapng readers (container + radiotap + pre-filter) on a
//! generated multi-device capture, plus the end-to-end file → engine
//! path. Machine-readable `RESULT capture …` lines are collected by
//! `run_all` into `BENCH_capture.json`.

use deepcsi_bench::result_line;
use deepcsi_bench::serve_bench::{serve_authenticator, serve_dataset};
use deepcsi_capture::{
    dot11_payload, is_beamforming_candidate, FrameSource, PcapFileSource, PcapReader, PcapngReader,
    SourcePoll,
};
use deepcsi_serve::{Backpressure, Engine, EngineConfig, ReplaySource, SourceStatus};
use std::time::Instant;

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let (modules, snapshots, reps) = if quick { (2, 10, 3) } else { (4, 50, 10) };

    let ds = serve_dataset(modules, snapshots);
    let replay = ReplaySource::from_dataset(&ds);
    let mut pcap = Vec::new();
    replay.write_pcap(&mut pcap).expect("in-memory export");
    let mut pcapng = Vec::new();
    replay.write_pcapng(&mut pcapng).expect("in-memory export");
    println!(
        "capture: {} frames from {} modules — pcap {:.2} MiB, pcapng {:.2} MiB",
        replay.len(),
        modules,
        mib(pcap.len()),
        mib(pcapng.len()),
    );

    println!("\n== container parse (read + radiotap + pre-filter) ==");
    measure_parse("pcap", &pcap, replay.len(), reps, |image| {
        PcapReader::new(image)
            .expect("valid header")
            .map(|r| r.expect("valid record"))
            .filter(|rec| {
                let (mpdu, _) = dot11_payload(rec.link_type, rec.data).expect("radiotap");
                is_beamforming_candidate(mpdu)
            })
            .count()
    });
    measure_parse("pcapng", &pcapng, replay.len(), reps, |image| {
        PcapngReader::new(image)
            .expect("valid SHB")
            .map(|r| r.expect("valid block"))
            .filter(|rec| {
                let (mpdu, _) = dot11_payload(rec.link_type, rec.data).expect("radiotap");
                is_beamforming_candidate(mpdu)
            })
            .count()
    });

    println!("\n== frame source (decode + copy out) ==");
    measure_parse("file_source", &pcap, replay.len(), reps, |image| {
        let mut src = PcapFileSource::from_bytes(image.to_vec());
        let mut n = 0usize;
        while let SourcePoll::Frame(_) = src.poll_frame().expect("valid capture") {
            n += 1;
        }
        n
    });

    println!("\n== end-to-end: pcap file → engine verdicts ==");
    let engine = Engine::start(
        EngineConfig {
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        serve_authenticator(&ds, ds.modules().len().max(2)),
        ReplaySource::registry(&ds),
    );
    let t = Instant::now();
    let mut src = PcapFileSource::from_bytes(pcap.clone());
    assert_eq!(
        engine.ingest_available(&mut src).expect("capture serves"),
        SourceStatus::End
    );
    engine.drain();
    let elapsed = t.elapsed().as_secs_f64();
    let report = engine.shutdown();
    let rps = report.stats.classified as f64 / elapsed;
    println!(
        "engine: {:>9.0} reports/s ({:>6.1} MiB/s) over {:.2?}",
        rps,
        mib(pcap.len()) / elapsed,
        t.elapsed()
    );
    result_line("capture", "engine_reports_per_sec", rps);
    result_line("capture", "engine_mib_per_sec", mib(pcap.len()) / elapsed);
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Times `parse(image)` over `reps` repetitions, checks it found every
/// frame, and reports frames/s + MiB/s.
fn measure_parse(
    name: &str,
    image: &[u8],
    frames: usize,
    reps: usize,
    parse: impl Fn(&[u8]) -> usize,
) {
    let found = parse(image); // warm-up + correctness
    assert_eq!(found, frames, "{name} parse missed frames");
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(parse(std::hint::black_box(image)));
    }
    let per_pass = t.elapsed().as_secs_f64() / reps as f64;
    let fps = frames as f64 / per_pass;
    let mibps = mib(image.len()) / per_pass;
    println!("{name:<12} {fps:>10.0} frames/s  {mibps:>7.1} MiB/s");
    result_line("capture", &format!("{name}_frames_per_sec"), fps);
    result_line("capture", &format!("{name}_mib_per_sec"), mibps);
}
