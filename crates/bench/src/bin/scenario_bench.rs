//! Channel-resilience scenario matrix: drives every decision policy
//! through the serve engine under the `crates/scenario` condition axes
//! (cross-position, mid-stream re-draw, mobility, SNR sweep,
//! interference bursts, multi-day drift), with and without the two
//! mitigations (training-time channel augmentation, per-position
//! calibration).
//!
//! Emits machine-readable `RESULT scenarios <key> <value>` lines that
//! `run_all` collects into `bench_results/BENCH_scenarios.json` — the
//! headline numbers being `accuracy_floor_unmitigated` vs
//! `accuracy_floor_mitigated` (the cross-scenario worst-case top-1),
//! and `mitigation_never_worse` pinning that augmentation never drops
//! any scenario below the unmitigated floor.

use deepcsi_bench::result_line;
use deepcsi_scenario::{MatrixConfig, ScenarioMatrix};

fn main() {
    let mut tiny = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => tiny = true,
            // Tolerate the figure-suite flags run_all forwards.
            "--paper" => {}
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    let matrix = if tiny {
        ScenarioMatrix::tiny()
    } else {
        ScenarioMatrix::standard(MatrixConfig::default())
    };
    result_line("scenarios", "axes", matrix.scenarios.len() as f64);
    result_line("scenarios", "policies", matrix.policies.len() as f64);

    let report = matrix.run();
    result_line("scenarios", "cells", report.cells.len() as f64);

    println!("\n{:<16} {:<6} {:>6}", "scenario", "arm", "top1");
    for acc in &report.accuracies {
        let arm = if acc.augmentation { "aug" } else { "base" };
        println!("{:<16} {:<6} {:>5.1}%", acc.scenario, arm, acc.top1 * 100.0);
        let key = format!(
            "acc_{}_{}",
            acc.scenario,
            if acc.augmentation {
                "augmented"
            } else {
                "unaugmented"
            }
        );
        result_line("scenarios", &key, acc.top1);
    }

    println!(
        "\n{:<16} {:<12} {:<16} {:>7} {:>8} {:>8}",
        "scenario", "policy", "arm", "accept", "imp_rej", "rtv_p50"
    );
    for cell in &report.cells {
        let arm = cell.mitigations.label();
        println!(
            "{:<16} {:<12} {:<16} {:>6.0}% {:>7.0}% {:>8}",
            cell.scenario,
            cell.policy.to_string(),
            arm,
            cell.genuine_accept_rate * 100.0,
            cell.impostor_reject_rate * 100.0,
            cell.reports_to_verdict_p50
                .map_or("n/a".into(), |v| v.to_string()),
        );
        let stem = format!("{}_{}_{arm}", cell.scenario, cell.policy);
        result_line(
            "scenarios",
            &format!("{stem}_accept_rate"),
            cell.genuine_accept_rate,
        );
        result_line(
            "scenarios",
            &format!("{stem}_impostor_reject"),
            cell.impostor_reject_rate,
        );
        if let Some(p50) = cell.reports_to_verdict_p50 {
            result_line("scenarios", &format!("{stem}_rtv_p50"), p50 as f64);
        }
    }

    if let Some(floor) = report.accuracy_floor(false) {
        result_line("scenarios", "accuracy_floor_unmitigated", floor);
    }
    if let Some(floor) = report.accuracy_floor(true) {
        result_line("scenarios", "accuracy_floor_mitigated", floor);
    }
    let never_worse = report.mitigation_never_worse();
    result_line(
        "scenarios",
        "mitigation_never_worse",
        f64::from(u8::from(never_worse)),
    );
    println!(
        "\ncross-scenario accuracy floor: unmitigated {:?}, mitigated {:?}, never worse: {never_worse}",
        report.accuracy_floor(false),
        report.accuracy_floor(true),
    );
    assert!(
        never_worse,
        "channel augmentation dropped a scenario below the unmitigated floor"
    );
}
