//! **Fig. 12** — accuracy vs (a) channel bandwidth and (b) number of TX
//! antennas used for fingerprinting.
//!
//! Paper: both forms of diversity help, especially on the hard sets —
//! 80 MHz > 40 MHz > 20 MHz (Ncol 234/110/54) and 3 > 2 > 1 antennas.

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_data::{d1_split, D1Set, InputSpec};
use deepcsi_phy::{SubcarrierLayout, WifiChannel};

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    let layout = SubcarrierLayout::vht80();

    println!("Fig. 12a — accuracy vs channel bandwidth, beamformee 1, stream 0\n");
    let bands: [(&str, Option<Vec<usize>>); 3] = [
        ("80MHz", None),
        (
            "40MHz",
            Some(layout.subband(&WifiChannel::CH42, &WifiChannel::CH38)),
        ),
        (
            "20MHz",
            Some(layout.subband(&WifiChannel::CH42, &WifiChannel::CH36)),
        ),
    ];
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        for (name, positions) in &bands {
            let ncol = positions.as_ref().map(|p| p.len()).unwrap_or(layout.len());
            let spec = InputSpec {
                subcarrier_positions: positions.clone(),
                ..scale.spec.clone()
            };
            let split = d1_split(&ds, set, &[1], &spec);
            run_labeled(
                &scale,
                &split,
                "fig12a",
                &format!("{set:?}-{name}-ncol{ncol}"),
                false,
            );
        }
        println!();
    }

    println!("Fig. 12b — accuracy vs number of TX antennas, beamformee 1, stream 0\n");
    let antenna_sets: [(&str, Vec<usize>); 3] = [
        ("3ant", vec![0, 1, 2]),
        ("2ant", vec![0, 1]),
        ("1ant", vec![0]),
    ];
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        for (name, antennas) in &antenna_sets {
            let spec = InputSpec {
                antennas: antennas.clone(),
                ..scale.spec.clone()
            };
            let split = d1_split(&ds, set, &[1], &spec);
            run_labeled(&scale, &split, "fig12b", &format!("{set:?}-{name}"), false);
        }
        println!();
    }
}
