//! **Fig. 8** — confusion matrices for beamformee 1, 3 TX antennas,
//! spatial stream 0, on the Table I sets.
//!
//! Paper: S1 98.02 %, S2 75.41 %, S3 42.97 %.

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_data::{d1_split, D1Set};

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    println!("Fig. 8 — D1 static sets, beamformee 1, stream 0\n");
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        let split = d1_split(&ds, set, &[1], &scale.spec);
        run_labeled(&scale, &split, "fig08", &format!("{set:?}"), true);
    }
}
