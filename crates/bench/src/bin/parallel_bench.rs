//! Parallel-serving scaling sweep: worker-count × per-worker
//! `infer_threads` engine throughput, the frozen model's lane-split
//! thread scaling (spawn-per-call `infer_batch_par` next to the
//! persistent `InferPool` the engine actually serves with), and the
//! SELU/sigmoid polynomial-exp before/after numbers — as
//! machine-readable `RESULT parallel …` lines (collected by `run_all`
//! into `BENCH_parallel.json`; keys documented in
//! `crates/bench/README.md`).
//!
//! On a single-core container the spawn-path thread sweeps fall *below*
//! 1x (each call pays `threads − 1` spawn/joins and buys no
//! parallelism); the pool rows should recover to ~1x there, since
//! parked lanes cost only a channel round-trip. The interesting scaling
//! numbers come from multi-core hosts, where the lane split spreads the
//! one shared weight snapshot across cores without any weight clone.

use deepcsi_bench::result_line;
use deepcsi_bench::serve_bench::{
    engine_reports_per_sec_threads, fast_cnn, measure_par_batch_s, measure_pool_batch_s, paper_cnn,
    serve_dataset,
};
use deepcsi_nn::poly_exp;
use std::time::Instant;

const BATCH: usize = 64;

/// Times one SELU pass (`λx` / `λα(eˣ−1)`) mapping a large buffer in
/// place — the same memory access pattern as the real activation layer,
/// so the compiler gets the same vectorization opportunity.
fn time_selu_pass(xs: &[f32], reps: usize, exp: impl Fn(f32) -> f32) -> f64 {
    let mut buf = xs.to_vec();
    // Best of 5 windows: the minimum is robust against preemption on
    // shared hosts, where a mean can absorb a whole descheduling.
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            for (v, &x) in buf.iter_mut().zip(xs) {
                // Same select form as `Selu`'s shared scalar map.
                let neg = 1.050_701 * 1.673_263_2 * (exp(x) - 1.0);
                let pos = 1.050_701 * x;
                *v = if x > 0.0 { pos } else { neg };
            }
            std::hint::black_box(&mut buf);
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    // A cache-resident activation plane (the real layers' working set),
    // so the exp comparison measures compute, not DRAM bandwidth.
    // The cnn rep counts are sized for the pool-vs-spawn comparison:
    // at t=2 the spawn tax is ~1% of a fast_cnn batch, so the paired
    // rows need sub-percent timing resolution to order reliably.
    let (exp_elems, exp_reps, cnn_reps, snapshots, repeat) = if quick {
        (16_384usize, 200usize, 8usize, 10usize, 1usize)
    } else {
        (32_768, 1_000, 16, 30, 2)
    };

    // --- SELU exp: libm before vs polynomial after -------------------
    println!("== SELU exp: f32::exp (before) vs poly_exp (after), {exp_elems} elems ==");
    let xs: Vec<f32> = (0..exp_elems)
        .map(|i| ((i * 37 % 400) as f32) * 0.02 - 6.0) // [-6, 2): mostly the exp branch
        .collect();
    let std_s = time_selu_pass(&xs, exp_reps, f32::exp);
    let poly_s = time_selu_pass(&xs, exp_reps, poly_exp);
    let ns_per = |s: f64| s * 1e9 / exp_elems as f64;
    println!(
        "f32::exp {:>7.2} ns/elem   poly_exp {:>7.2} ns/elem   speedup {:.2}x",
        ns_per(std_s),
        ns_per(poly_s),
        std_s / poly_s
    );
    result_line("parallel", "selu_exp_std_ns_per_elem", ns_per(std_s));
    result_line("parallel", "selu_exp_poly_ns_per_elem", ns_per(poly_s));
    result_line("parallel", "poly_exp_speedup", std_s / poly_s);

    // --- Frozen model: raw lane-split thread scaling -----------------
    println!("\n== FrozenModel::infer_batch_par thread scaling (batch {BATCH}) ==");
    let mut workloads = vec![fast_cnn()];
    if !quick {
        workloads.push(paper_cnn());
    }
    for w in workloads {
        let base_s = measure_par_batch_s(&w, BATCH, 1, cnn_reps);
        for threads in [1usize, 2, 4] {
            // t=1 *is* the baseline: reuse the measurement so its row
            // reads exactly 1.0 instead of run-to-run noise.
            let s = if threads == 1 {
                base_s
            } else {
                measure_par_batch_s(&w, BATCH, threads, cnn_reps)
            };
            // The same split through the persistent pool: parked lanes
            // replace the per-call spawn/join, so the pool row should
            // never fall below the spawn row at the same lane count.
            let pool_s = measure_pool_batch_s(&w, BATCH, threads, cnn_reps);
            println!(
                "{:<10} t={threads}: spawn {:>9.3} ms/batch ({:.2}x vs t=1)   pool {:>9.3} ms/batch ({:.2}x vs t=1, {:.2}x vs spawn)",
                w.name,
                s * 1e3,
                base_s / s,
                pool_s * 1e3,
                base_s / pool_s,
                s / pool_s
            );
            result_line(
                "parallel",
                &format!("infer_batch_{}_t{threads}_speedup", w.name),
                base_s / s,
            );
            result_line(
                "parallel",
                &format!("infer_batch_{}_t{threads}_pool_speedup", w.name),
                base_s / pool_s,
            );
        }
    }

    // --- End-to-end engine: workers × infer_threads ------------------
    println!("\n== engine scaling: workers × infer_threads ==");
    let ds = serve_dataset(2, snapshots);
    for workers in [1usize, 2, 4] {
        for threads in [1usize, 2, 4] {
            let rps = engine_reports_per_sec_threads(&ds, workers, threads, repeat);
            println!("workers {workers} × threads {threads}: {rps:>8.0} reports/s");
            result_line(
                "parallel",
                &format!("reports_per_sec_w{workers}_t{threads}"),
                rps,
            );
        }
    }
}
