//! **Fig. 15** — classifying from the *second* spatial stream's Ṽ column
//! instead of the first.
//!
//! Paper: S1 stays high (97.03 %) but S2/S3 collapse (13.32 % / 5.63 %):
//! quantization error propagates into the higher-order column (Fig. 13),
//! and under low training diversity the degraded fingerprint no longer
//! transfers across positions.

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_data::{d1_split, D1Set, InputSpec};

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    let spec = InputSpec {
        streams: vec![1],
        ..scale.spec.clone()
    };
    println!("Fig. 15 — beamformee 1, 3 TX antennas, spatial stream 1\n");
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        let split = d1_split(&ds, set, &[1], &spec);
        run_labeled(&scale, &split, "fig15", &format!("{set:?}-stream1"), true);
    }
}
