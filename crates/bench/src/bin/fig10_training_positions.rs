//! **Fig. 10** — accuracy as a function of the number of beamformee
//! positions in the training set (1..9 for S1, 1..5 for S2/S3).
//!
//! Paper: accuracy increases monotonically with training-position
//! diversity for every set.

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_data::{d1_split_positions, D1Set};

/// Nested training-position subsets, growing outward from the center so
/// every prefix is spatially balanced.
fn growth_order(set: D1Set) -> Vec<usize> {
    match set {
        D1Set::S1 => vec![5, 3, 7, 1, 9, 2, 4, 6, 8],
        D1Set::S2 => vec![5, 3, 7, 1, 9],
        D1Set::S3 => vec![3, 2, 4, 1, 5],
    }
}

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    println!("Fig. 10 — accuracy vs number of training positions, beamformee 1\n");
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        let order = growth_order(set);
        let test_positions = set.test_positions();
        println!("set {set:?} (test positions {test_positions:?}):");
        for n in 1..=order.len() {
            let train_positions = &order[..n];
            let split =
                d1_split_positions(&ds, train_positions, &test_positions, &[1], &scale.spec);
            run_labeled(&scale, &split, "fig10", &format!("{set:?}-npos{n}"), false);
        }
        println!();
    }
}
