//! Distributed-tier benchmark: loopback cluster throughput at 1, 2 and
//! 4 engine nodes behind the shard router, device-state eviction and
//! re-warm under a hard cap, and snapshot encode/decode/restore
//! timings — as machine-readable `RESULT cluster …` lines (collected
//! by `run_all` into `BENCH_cluster.json`; keys documented in
//! `crates/bench/README.md`).
//!
//! The node sweep is a real TCP loopback: one `ShardRouter` in front of
//! N in-process [`EngineNode`]s, a [`ClusterClient`] streaming the
//! deterministic demo replay. Every node serves the identical
//! independently-trained model (the tier's determinism contract), so
//! the sweep prices the wire + fan-out, not model variance.

use deepcsi_bench::result_line;
use deepcsi_cluster::demo::{demo_dataset, demo_frames, demo_model, DemoConfig};
use deepcsi_cluster::{ClusterClient, ClusterStats, EngineNode, RouterConfig, ShardRouter};
use deepcsi_core::{Authenticator, FrozenAuthenticator, ModelConfig};
use deepcsi_data::InputSpec;
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_serve::{Backpressure, Engine, EngineConfig, ReplaySource};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DRAIN_TIMEOUT: Duration = Duration::from_secs(300);

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let (demo, repeat, evict_reports) = if quick {
        (
            DemoConfig {
                modules: 2,
                snapshots: 8,
                epochs: 1,
            },
            2usize,
            400usize,
        )
    } else {
        (
            DemoConfig {
                modules: 2,
                snapshots: 24,
                epochs: 2,
            },
            8,
            4000,
        )
    };

    // --- Node sweep ---------------------------------------------------
    println!("== loopback cluster throughput vs node count ==");
    let t = Instant::now();
    let ds = demo_dataset(&demo);
    let frozen: Arc<FrozenAuthenticator> = Arc::new(demo_model(&demo, &ds).freeze());
    let frames = demo_frames(&ds);
    println!(
        "demo model trained in {:.1?} ({} frames ×{repeat})",
        t.elapsed(),
        frames.len()
    );
    for nodes in [1usize, 2, 4] {
        let rps = cluster_reports_per_sec(&ds, &frozen, &frames, nodes, repeat);
        println!("{nodes} node(s): {rps:>9.0} reports/s");
        result_line("cluster", &format!("nodes{nodes}_reports_per_sec"), rps);
    }

    // --- Eviction / re-warm under a hard cap --------------------------
    println!("\n== bounded device state: eviction + re-warm ==");
    let (rps, evicted, rewarmed) = eviction_churn(evict_reports);
    println!(
        "cap 16, {evict_reports} distinct sources: {rps:.0} reports/s, {evicted} evicted, {rewarmed} re-warmed"
    );
    result_line("cluster", "evict_reports_per_sec", rps);
    result_line("cluster", "devices_evicted", evicted as f64);
    result_line("cluster", "devices_rewarmed", rewarmed as f64);

    // --- Snapshot timings ---------------------------------------------
    println!("\n== snapshot encode / decode / restore ==");
    snapshot_timings(&ds, &frozen, repeat);
}

/// Streams the replay through a router over `nodes` loopback engine
/// nodes and returns end-to-end reports/second (send → drain).
fn cluster_reports_per_sec(
    ds: &deepcsi_data::Dataset,
    frozen: &Arc<FrozenAuthenticator>,
    frames: &[(MacAddr, Vec<u8>)],
    nodes: usize,
    repeat: usize,
) -> f64 {
    let mut running = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..nodes {
        let engine = Arc::new(Engine::start_frozen(
            EngineConfig {
                workers: 1,
                backpressure: Backpressure::Block,
                ..EngineConfig::default()
            },
            Arc::clone(frozen),
            ReplaySource::registry(ds),
        ));
        let node = EngineNode::start(
            "127.0.0.1:0",
            Arc::clone(&engine),
            Arc::new(ClusterStats::new(1)),
        )
        .expect("bind node");
        addrs.push(node.local_addr().to_string());
        running.push((node, engine));
    }
    let router = ShardRouter::start(
        RouterConfig {
            listen: "127.0.0.1:0".into(),
            nodes: addrs,
            ..RouterConfig::default()
        },
        Arc::new(ClusterStats::new(nodes)),
    )
    .expect("bind router");

    let mut client =
        ClusterClient::connect(&router.local_addr().to_string()).expect("connect to router");
    let t = Instant::now();
    for _ in 0..repeat {
        for (mac, mpdu) in frames {
            client.send_report(*mac, mpdu).expect("stream report");
        }
    }
    let reply = client.drain(DRAIN_TIMEOUT).expect("drain");
    let elapsed = t.elapsed();
    assert_eq!(reply.stats.dropped, 0, "Block backpressure never drops");
    let sent = (frames.len() * repeat) as f64;

    drop(client);
    router.stop();
    for (node, engine) in running {
        node.stop();
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("engine still shared"))
            .shutdown();
    }
    sent / elapsed.as_secs_f64().max(1e-9)
}

/// Ingest throughput while the LRU cap is churning: `reports` distinct
/// MACs through a 16-state cap, then the first 16 return (re-warm).
fn eviction_churn(reports: usize) -> (f64, u64, u64) {
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let probe_ds = demo_dataset(&DemoConfig {
        modules: 1,
        snapshots: 1,
        epochs: 1,
    });
    let fb = probe_ds.traces[0].snapshots[0].clone();
    let probe = spec.tensor(&fb);
    let model = ModelConfig::fast(2, 0);
    let auth = Authenticator::new(model.build_for(&probe), spec);
    let monitor = MacAddr::station(0xAC_CE55);
    let engine = Engine::start(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            max_device_states: Some(16),
            ..EngineConfig::default()
        },
        auth,
        deepcsi_serve::DeviceRegistry::new(),
    );
    let frame_for = |id: u64, seq: u16| {
        BeamformingReportFrame::new(monitor, MacAddr::station(id), monitor, seq, fb.clone())
            .encode()
    };
    let t = Instant::now();
    for id in 0..reports as u64 {
        engine.ingest_frame(&frame_for(id, (id % 4096) as u16));
    }
    for id in 0..16u64 {
        engine.ingest_frame(&frame_for(id, 4000 + id as u16));
    }
    engine.drain();
    let elapsed = t.elapsed();
    let stats = engine.stats();
    engine.shutdown();
    (
        (reports + 16) as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.devices_evicted,
        stats.devices_rewarmed,
    )
}

/// Times `EngineSnapshot` encode, decode and engine restore over the
/// replayed demo state.
fn snapshot_timings(ds: &deepcsi_data::Dataset, frozen: &Arc<FrozenAuthenticator>, repeat: usize) {
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        Arc::clone(frozen),
        ReplaySource::registry(ds),
    );
    let replay = ReplaySource::from_dataset(ds);
    for _ in 0..repeat {
        for frame in replay.frames() {
            engine.ingest_frame(frame);
        }
    }
    engine.drain();

    let t = Instant::now();
    let snap = engine.snapshot();
    let capture_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let bytes = snap.encode();
    let encode_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let decoded = deepcsi_serve::EngineSnapshot::decode(&bytes).expect("round trip");
    let decode_us = t.elapsed().as_secs_f64() * 1e6;
    engine.shutdown();

    let fresh = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        Arc::clone(frozen),
        ReplaySource::registry(ds),
    );
    let t = Instant::now();
    let restored = fresh.restore(&decoded);
    let restore_us = t.elapsed().as_secs_f64() * 1e6;
    fresh.shutdown();

    println!(
        "{} devices, {} bytes: capture {capture_us:.0} µs, encode {encode_us:.0} µs, decode {decode_us:.0} µs, restore {restore_us:.0} µs",
        restored,
        bytes.len()
    );
    result_line("cluster", "snapshot_devices", restored as f64);
    result_line("cluster", "snapshot_bytes", bytes.len() as f64);
    result_line("cluster", "snapshot_capture_us", capture_us);
    result_line("cluster", "snapshot_encode_us", encode_us);
    result_line("cluster", "snapshot_decode_us", decode_us);
    result_line("cluster", "snapshot_restore_us", restore_us);
}
