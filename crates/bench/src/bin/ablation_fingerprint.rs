//! **Ablation** (DESIGN.md §6) — accuracy vs fingerprint strength and
//! feedback codebook.
//!
//! Two controls the paper cannot run on physical radios but a simulator
//! can:
//!
//! 1. Scale all device-distinguishing impairment magnitudes by a factor
//!    `s`. At `s = 0` every module is hardware-identical, so accuracy
//!    must collapse to chance — proving the classifier keys on the
//!    *hardware fingerprint*, not on channel artefacts (every module sees
//!    the same room).
//! 2. Swap the (bψ=7, bφ=9) codebook for the coarser (bψ=5, bφ=7): the
//!    quantization-error study of Fig. 13 predicts a measurable accuracy
//!    cost, mostly on the harder sets.

use deepcsi_bench::{run_labeled, FigureScale};
use deepcsi_data::{d1_split, generate_d1, D1Set};
use deepcsi_phy::Codebook;

fn main() {
    let mut scale = FigureScale::from_args();
    scale.gen.num_modules = 6;
    scale.gen.snapshots_per_trace = 60;

    println!("Ablation 1 — accuracy vs fingerprint strength (set S3, beamformee 1)\n");
    for strength in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let mut gen = scale.gen.clone();
        gen.profile = gen.profile.scaled(strength);
        let ds = generate_d1(&gen);
        let split = d1_split(&ds, D1Set::S3, &[1], &scale.spec);
        run_labeled(
            &scale,
            &split,
            "ablation",
            &format!("strength{strength}"),
            false,
        );
    }
    println!(
        "(chance level: {:.1}%)\n",
        100.0 / scale.gen.num_modules as f64
    );

    println!("Ablation 2 — accuracy vs feedback codebook (set S3, beamformee 1)\n");
    for cb in [Codebook::MU_HIGH, Codebook::MU_LOW] {
        let mut gen = scale.gen.clone();
        gen.codebook = cb;
        let ds = generate_d1(&gen);
        let split = d1_split(&ds, D1Set::S3, &[1], &scale.spec);
        run_labeled(
            &scale,
            &split,
            "ablation",
            &format!("codebook-bphi{}", cb.b_phi),
            false,
        );
    }
}
