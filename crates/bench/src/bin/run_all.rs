//! Runs every figure binary in sequence and collects the `RESULT` lines
//! into `bench_results/summary.txt` — the data behind EXPERIMENTS.md.
//! Also runs the serving/capture throughput benches, the decision-policy
//! comparison, the parallel-serving scaling sweep, the int8-vs-f32
//! quantization comparison and the observability overhead sweep
//! (`serve_throughput`, `capture_throughput`, `policy_bench`,
//! `parallel_bench`, `quant_bench`, `obs_bench`) and emits their
//! numbers as `BENCH_serve.json` / `BENCH_capture.json` /
//! `BENCH_policy.json` / `BENCH_parallel.json` / `BENCH_quant.json` /
//! `BENCH_obs.json` (schema documented in `crates/bench/README.md`).

use std::path::{Path, PathBuf};
use std::process::Command;

const FIGURES: &[&str] = &[
    "fig07_hyperparams",
    "fig08_static_sets",
    "fig09_mixed_beamformees",
    "fig10_training_positions",
    "fig11_swap_beamformees",
    "fig12_phy_params",
    "fig13_quant_error",
    "fig14_v_evolution",
    "fig15_stream1",
    "fig16_offset_correction",
    "fig17_mobility",
];

fn main() {
    let exe_dir: PathBuf = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let forwarded: Vec<String> = std::env::args().skip(1).collect();

    let out_dir = PathBuf::from("bench_results");
    std::fs::create_dir_all(&out_dir).expect("create bench_results/");
    let mut summary = String::new();

    for fig in FIGURES {
        let bin = exe_dir.join(fig);
        println!("\n================ {fig} ================");
        let start = std::time::Instant::now();
        let output = Command::new(&bin)
            .args(&forwarded)
            .output()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", bin.display()));
        let stdout = String::from_utf8_lossy(&output.stdout);
        print!("{stdout}");
        if !output.status.success() {
            eprintln!("{fig} FAILED: {}", String::from_utf8_lossy(&output.stderr));
        }
        std::fs::write(out_dir.join(format!("{fig}.txt")), stdout.as_bytes())
            .expect("write figure log");
        for line in stdout.lines() {
            if line.starts_with("RESULT ") {
                summary.push_str(line);
                summary.push('\n');
            }
        }
        println!("[{fig} finished in {:.1?}]", start.elapsed());
    }

    std::fs::write(out_dir.join("summary.txt"), &summary).expect("write summary");
    println!(
        "\nwrote bench_results/summary.txt ({} result lines)",
        summary.lines().count()
    );

    run_result_bench(&exe_dir, &forwarded, &out_dir, "serve_throughput", "serve");
    run_result_bench(
        &exe_dir,
        &forwarded,
        &out_dir,
        "capture_throughput",
        "capture",
    );
    run_result_bench(&exe_dir, &forwarded, &out_dir, "policy_bench", "policy");
    run_result_bench(&exe_dir, &forwarded, &out_dir, "parallel_bench", "parallel");
    run_result_bench(&exe_dir, &forwarded, &out_dir, "quant_bench", "quant");
    run_result_bench(&exe_dir, &forwarded, &out_dir, "obs_bench", "obs");
    run_result_bench(
        &exe_dir,
        &forwarded,
        &out_dir,
        "scenario_bench",
        "scenarios",
    );
    run_result_bench(&exe_dir, &forwarded, &out_dir, "cluster_bench", "cluster");
}

/// Runs one bench binary and writes its `RESULT <tag> <key> <value>`
/// lines to `BENCH_<tag>.json`.
fn run_result_bench(
    exe_dir: &Path,
    forwarded: &[String],
    out_dir: &Path,
    bin_name: &str,
    tag: &str,
) {
    let bin = exe_dir.join(bin_name);
    println!("\n================ {bin_name} ================");
    let start = std::time::Instant::now();
    let output = Command::new(&bin)
        .args(forwarded)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {}: {e}", bin.display()));
    let stdout = String::from_utf8_lossy(&output.stdout);
    print!("{stdout}");
    if !output.status.success() {
        eprintln!(
            "{bin_name} FAILED: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::write(out_dir.join(format!("{bin_name}.txt")), stdout.as_bytes())
        .expect("write bench log");

    let mut entries = Vec::new();
    for line in stdout.lines() {
        // RESULT <tag> <key> <value>
        let mut parts = line.split_whitespace();
        if parts.next() != Some("RESULT") || parts.next() != Some(tag) {
            continue;
        }
        if let (Some(key), Some(value)) = (parts.next(), parts.next()) {
            // Only finite numbers make valid JSON ("inf"/"NaN" parse as
            // f64 but are not JSON values).
            if value.parse::<f64>().map(f64::is_finite).unwrap_or(false) {
                entries.push(format!("  \"{key}\": {value}"));
            }
        }
    }
    let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
    let path = out_dir.join(format!("BENCH_{tag}.json"));
    std::fs::write(&path, &json).expect("write bench json");
    println!(
        "wrote {} ({} metrics) [{:.1?}]",
        path.display(),
        entries.len(),
        start.elapsed()
    );
}
