//! Serving throughput summary: end-to-end engine reports/second and the
//! micro-batched inference speedups, as machine-readable `RESULT` lines
//! (collected by `run_all` into `BENCH_serve.json`).

use deepcsi_bench::result_line;
use deepcsi_bench::serve_bench::{
    dense_stack, engine_reports_per_sec, fast_cnn, measure_speedup, paper_cnn, report_speedup,
    serve_dataset,
};

const BATCH: usize = 32;

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--tiny" | "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let (cnn_reps, dense_reps, snapshots, repeat) =
        if quick { (1, 2, 10, 1) } else { (3, 8, 40, 2) };

    println!("== micro-batched inference (batch {BATCH}) ==");
    for (mut w, reps) in [
        (fast_cnn(), cnn_reps * 4),
        (paper_cnn(), cnn_reps),
        (dense_stack(), dense_reps),
    ] {
        let m = measure_speedup(&mut w, BATCH, reps);
        report_speedup(&w, BATCH, m);
    }

    println!("\n== end-to-end engine ==");
    for workers in [1usize, 2, 4] {
        let ds = serve_dataset(2, snapshots);
        let rps = engine_reports_per_sec(&ds, workers, repeat);
        println!("workers {workers}: {rps:>8.0} reports/s");
        result_line("serve", &format!("reports_per_sec_w{workers}"), rps);
    }
}
