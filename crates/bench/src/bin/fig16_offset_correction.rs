//! **Fig. 16** — DeepCSI vs learning from the offset-corrected input
//! (the \[36\] phase sanitizer).
//!
//! Paper: cleaning costs accuracy on every set (S1: 98.02 % → 83.10 %) —
//! the removed phase intercepts/slopes carry the transmitter's per-chain
//! hardware signature, so "offset cleaning may result in their partial
//! removal, affecting the fingerprinting quality".

use deepcsi_bench::{d1_cached, run_labeled, FigureScale};
use deepcsi_core::baseline;
use deepcsi_data::{d1_split, D1Set};

fn main() {
    let scale = FigureScale::from_args();
    let ds = d1_cached(&scale.gen);
    let cleaned = baseline::cleaned_spec(&scale.spec);
    println!("Fig. 16 — DeepCSI vs offset-corrected input, beamformee 1, stream 0\n");
    for set in [D1Set::S1, D1Set::S2, D1Set::S3] {
        let raw_split = d1_split(&ds, set, &[1], &scale.spec);
        let raw = run_labeled(
            &scale,
            &raw_split,
            "fig16",
            &format!("{set:?}-deepcsi"),
            false,
        );
        let clean_split = d1_split(&ds, set, &[1], &cleaned);
        let clean = run_labeled(
            &scale,
            &clean_split,
            "fig16",
            &format!("{set:?}-offs-corr"),
            set == D1Set::S1, // Fig. 16b shows the S1 cleaned confusion
        );
        println!(
            "  {set:?}: cleaning changes accuracy by {:+.2} points\n",
            (clean - raw) * 100.0
        );
    }
}
