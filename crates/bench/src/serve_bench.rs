//! Shared measurement helpers for the serving benchmarks
//! (`benches/serve.rs` and the `serve_throughput` binary).

use deepcsi_core::{Authenticator, ModelConfig};
use deepcsi_data::{generate_d1, Dataset, GenConfig, InputSpec};
use deepcsi_nn::{Dense, Network, Selu, Tensor};
use deepcsi_serve::{Backpressure, Engine, EngineConfig, ReplaySource};
use std::time::Instant;

/// A named inference workload: network + one representative input.
pub struct Workload {
    /// Display name (used in RESULT keys).
    pub name: &'static str,
    /// The network under test.
    pub net: Network,
    /// Per-sample input shape.
    pub input_shape: Vec<usize>,
}

/// The paper-architecture CNN at full input width.
pub fn paper_cnn() -> Workload {
    Workload {
        name: "paper_cnn",
        net: ModelConfig::paper(10, 1).build((5, 1, 234)),
        input_shape: vec![5, 1, 234],
    }
}

/// The fast sweep-profile CNN.
pub fn fast_cnn() -> Workload {
    Workload {
        name: "fast_cnn",
        net: ModelConfig::fast(10, 1).build((5, 1, 117)),
        input_shape: vec![5, 1, 117],
    }
}

/// A dense-stack classifier head at serving scale — the workload where
/// micro-batching converts memory-bound mat-vec into a register-blocked
/// mat-mul (the headline forward_batch speedup).
pub fn dense_stack() -> Workload {
    let mut net = Network::new();
    net.push(Dense::new(1170, 2048, 1));
    net.push(Selu::new());
    net.push(Dense::new(2048, 2048, 2));
    net.push(Selu::new());
    net.push(Dense::new(2048, 1024, 3));
    net.push(Selu::new());
    net.push(Dense::new(1024, 10, 4));
    Workload {
        name: "dense_stack",
        net,
        input_shape: vec![1170],
    }
}

/// Deterministic pseudo-random inputs for a workload.
pub fn inputs(w: &Workload, batch: usize) -> Vec<Tensor> {
    let len: usize = w.input_shape.iter().product();
    (0..batch)
        .map(|s| {
            Tensor::from_vec(
                (0..len)
                    .map(|e| ((e * 31 + s * 7) % 13) as f32 * 0.1 - 0.6)
                    .collect(),
                w.input_shape.clone(),
            )
        })
        .collect()
}

/// Measured per-sample vs micro-batched inference for one workload.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupMeasurement {
    /// Wall time of `batch` sequential `forward` calls, seconds.
    pub sequential_s: f64,
    /// Wall time of one `forward_batch` over the same inputs, seconds.
    pub batched_s: f64,
}

impl SpeedupMeasurement {
    /// Throughput ratio (sequential time / batched time).
    pub fn speedup(&self) -> f64 {
        self.sequential_s / self.batched_s
    }
}

/// Prints one workload's speedup measurement: the human-readable line
/// plus the machine-readable `RESULT serve …` line `run_all` collects
/// into `BENCH_serve.json` (single source of the key format for the
/// bench and the `serve_throughput` binary).
pub fn report_speedup(w: &Workload, batch: usize, m: SpeedupMeasurement) {
    println!(
        "{:<12} sequential {:>9.3} ms  batched {:>9.3} ms  speedup {:>5.1}x",
        w.name,
        m.sequential_s * 1e3,
        m.batched_s * 1e3,
        m.speedup()
    );
    crate::result_line(
        "serve",
        &format!("forward_batch_speedup_{}_b{batch}", w.name),
        m.speedup(),
    );
}

/// Times the frozen batched path (`FrozenModel::infer_batch` with a warm
/// [`deepcsi_nn::InferCtx`] — the serving engine's steady state) against
/// `batch` sequential `forward` calls.
pub fn measure_speedup(w: &mut Workload, batch: usize, min_reps: usize) -> SpeedupMeasurement {
    let xs = inputs(w, batch);
    let frozen = w.net.freeze();
    let mut ctx = frozen.ctx();
    // Warm-up both paths (and the ctx's buffer high-water mark).
    let _ = frozen.infer_batch(&xs, &mut ctx);
    for x in &xs {
        let _ = w.net.forward(x, false);
    }
    let reps = min_reps.max(1);
    let t = Instant::now();
    for _ in 0..reps {
        for x in &xs {
            std::hint::black_box(w.net.forward(x, false));
        }
    }
    let sequential_s = t.elapsed().as_secs_f64() / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(frozen.infer_batch(&xs, &mut ctx));
    }
    let batched_s = t.elapsed().as_secs_f64() / reps as f64;
    SpeedupMeasurement {
        sequential_s,
        batched_s,
    }
}

/// Times `FrozenModel::infer_batch_par` at a given context (thread)
/// count, seconds per batch. `threads = 1` is the no-spawn baseline the
/// scaling sweep normalises against.
pub fn measure_par_batch_s(w: &Workload, batch: usize, threads: usize, min_reps: usize) -> f64 {
    let xs = inputs(w, batch);
    let frozen = w.net.freeze();
    let mut ctxs: Vec<deepcsi_nn::InferCtx> = (0..threads).map(|_| frozen.ctx()).collect();
    let _ = frozen.infer_batch_par(&xs, &mut ctxs); // warm-up
    let reps = min_reps.max(1);
    // Best of 5 windows, as in the SELU pass: the minimum is robust
    // against preemption on shared hosts, which matters doubly here —
    // the spawn-vs-pool comparison is decided by margins smaller than
    // one descheduling.
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(frozen.infer_batch_par(&xs, &mut ctxs));
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Times the same lane split through a persistent [`deepcsi_nn::InferPool`]
/// at a given lane count, seconds per batch. The pool is built once
/// outside the timed loop — exactly how the serving engine holds it —
/// so the measurement sees the steady-state hot path (channel handoff,
/// no spawn/join) rather than pool construction.
pub fn measure_pool_batch_s(w: &Workload, batch: usize, lanes: usize, min_reps: usize) -> f64 {
    let xs = inputs(w, batch);
    let frozen = w.net.freeze();
    let mut pool = deepcsi_nn::InferPool::new(lanes);
    let _ = pool.infer_batch(&frozen, &xs); // warm-up (grows lane buffers)
    let reps = min_reps.max(1);
    // Best of 5 windows, matching `measure_par_batch_s` exactly.
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(pool.infer_batch(&frozen, &xs));
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// A small synthetic capture for end-to-end engine throughput runs.
pub fn serve_dataset(modules: u32, snapshots: usize) -> Dataset {
    generate_d1(&GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    })
}

/// An untrained fast classifier over the dataset's input shape
/// (throughput does not depend on trained weights).
pub fn serve_authenticator(ds: &Dataset, classes: usize) -> Authenticator {
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    Authenticator::new(ModelConfig::fast(classes, 0).build_for(&probe), spec)
}

/// End-to-end engine throughput for one replay pass, reports/second.
pub fn engine_reports_per_sec(ds: &Dataset, workers: usize, repeat: usize) -> f64 {
    engine_reports_per_sec_threads(ds, workers, 1, repeat)
}

/// [`engine_reports_per_sec`] with an explicit per-worker
/// `infer_threads` count (the `parallel_bench` scaling sweep).
pub fn engine_reports_per_sec_threads(
    ds: &Dataset,
    workers: usize,
    infer_threads: usize,
    repeat: usize,
) -> f64 {
    engine_reports_per_sec_cfg(
        ds,
        EngineConfig {
            workers,
            infer_threads,
            // One full SIMD lane block per inference thread, so every
            // `t` row of the sweep measures a genuine `t`-way split.
            max_batch: (deepcsi_nn::PAR_MIN_CHUNK * infer_threads).max(32),
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        repeat,
    )
}

/// End-to-end engine throughput under an arbitrary [`EngineConfig`] —
/// the `obs_bench` overhead sweep varies only the observability fields
/// (`stage_timing`, `trace`, `profile`) against a fixed serving setup.
pub fn engine_reports_per_sec_cfg(ds: &Dataset, cfg: EngineConfig, repeat: usize) -> f64 {
    engine_reports_per_sec_observed(ds, cfg, repeat, |_| (), |()| ())
}

/// [`engine_reports_per_sec_cfg`] with observer hooks: `attach` runs
/// once the engine is up (bind a scrape plane, launch scraper threads)
/// and `detach` runs after the replay has drained and the clock has
/// stopped (tear the observers down before engine shutdown) — the
/// `obs_bench` live-plane overhead rows.
pub fn engine_reports_per_sec_observed<T>(
    ds: &Dataset,
    cfg: EngineConfig,
    repeat: usize,
    attach: impl FnOnce(&Engine) -> T,
    detach: impl FnOnce(T),
) -> f64 {
    let replay = ReplaySource::from_dataset(ds);
    let engine = Engine::start(
        cfg,
        serve_authenticator(ds, ds.modules().len().max(2)),
        ReplaySource::registry(ds),
    );
    let observers = attach(&engine);
    let t = Instant::now();
    for _ in 0..repeat {
        for frame in replay.frames() {
            engine.ingest_frame(frame);
        }
    }
    engine.drain();
    let elapsed = t.elapsed().as_secs_f64();
    detach(observers);
    let report = engine.shutdown();
    report.stats.classified as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_measurement_is_positive() {
        let mut w = fast_cnn();
        let m = measure_speedup(&mut w, 4, 1);
        assert!(m.sequential_s > 0.0 && m.batched_s > 0.0);
        assert!(m.speedup() > 0.0);
    }

    #[test]
    fn engine_throughput_is_positive() {
        let ds = serve_dataset(1, 3);
        assert!(engine_reports_per_sec(&ds, 1, 1) > 0.0);
    }
}
