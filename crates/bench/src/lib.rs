//! Shared harness for the per-figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table/figure of the paper
//! (see DESIGN.md §5 for the index). They share:
//!
//! * [`FigureScale`] — the experiment scale knobs (dataset size, model
//!   profile, epochs), with a laptop-friendly default and a `--paper`
//!   flag for full-scale runs.
//! * [`d1_cached`] / [`d2_cached`] — dataset generation with on-disk
//!   caching, so the sweep binaries do not regenerate the world.
//! * Reporting helpers that print the same rows/series the paper reports
//!   and a machine-readable `figNN:` summary line consumed by
//!   `run_all` to assemble EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve_bench;

use deepcsi_core::{ExperimentConfig, ModelConfig};
use deepcsi_data::{generate_d1, generate_d2, Dataset, GenConfig, InputSpec};
use deepcsi_nn::{ConfusionMatrix, TrainConfig};
use std::path::PathBuf;

/// Experiment scale used by a figure binary.
#[derive(Debug, Clone)]
pub struct FigureScale {
    /// Dataset generation configuration.
    pub gen: GenConfig,
    /// Input view (stride etc.).
    pub spec: InputSpec,
    /// Epochs for each training.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Use the paper's full 128-filter architecture instead of the fast
    /// profile.
    pub paper_model: bool,
}

impl Default for FigureScale {
    fn default() -> Self {
        FigureScale {
            gen: GenConfig {
                snapshots_per_trace: 100,
                ..GenConfig::default()
            },
            spec: InputSpec::fast(),
            epochs: 8,
            learning_rate: 1.5e-3,
            paper_model: false,
        }
    }
}

impl FigureScale {
    /// Parses command-line arguments: `--paper` switches to the full
    /// paper-scale model and full-resolution inputs, `--tiny` shrinks
    /// everything for smoke tests.
    pub fn from_args() -> Self {
        let mut scale = FigureScale::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--paper" => {
                    scale.spec = InputSpec::paper_default();
                    scale.paper_model = true;
                    scale.gen.snapshots_per_trace = 200;
                    scale.epochs = 12;
                }
                "--tiny" => {
                    scale.gen.num_modules = 4;
                    scale.gen.snapshots_per_trace = 30;
                    scale.epochs = 4;
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        scale
    }

    /// The experiment configuration for one training run with a given
    /// seed.
    pub fn experiment(&self, seed: u64) -> ExperimentConfig {
        let classes = self.gen.num_modules as usize;
        ExperimentConfig {
            model: if self.paper_model {
                ModelConfig::paper(classes, seed)
            } else {
                ModelConfig::fast(classes, seed)
            },
            train: TrainConfig {
                epochs: self.epochs,
                batch_size: 64,
                learning_rate: self.learning_rate,
                seed,
                ..TrainConfig::default()
            },
        }
    }
}

fn cache_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("deepcsi-dataset-cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn gen_key(cfg: &GenConfig) -> String {
    format!(
        "e{}s{}m{}f{}p{:.3}",
        cfg.env_id,
        cfg.snapshots_per_trace,
        cfg.num_modules,
        cfg.via_frames as u8,
        cfg.profile.fingerprint_strength,
    )
}

/// Generates (or loads from cache) dataset D1 for a configuration.
pub fn d1_cached(cfg: &GenConfig) -> Dataset {
    let path = cache_dir().join(format!("d1-{}.bin", gen_key(cfg)));
    if let Ok(ds) = deepcsi_data::load_dataset(&path) {
        return ds;
    }
    let ds = generate_d1(cfg);
    deepcsi_data::save_dataset(&path, &ds).ok();
    ds
}

/// Generates (or loads from cache) dataset D2 for a configuration.
pub fn d2_cached(cfg: &GenConfig) -> Dataset {
    let path = cache_dir().join(format!("d2-{}.bin", gen_key(cfg)));
    if let Ok(ds) = deepcsi_data::load_dataset(&path) {
        return ds;
    }
    let ds = generate_d2(cfg);
    deepcsi_data::save_dataset(&path, &ds).ok();
    ds
}

/// Prints a confusion matrix under a title (the paper's figure panels).
pub fn print_confusion(title: &str, cm: &ConfusionMatrix) {
    println!("\n--- {title} ---");
    println!("{cm}");
}

/// Prints the machine-readable summary line `run_all` collects:
/// `RESULT <figure> <key> <value>`.
pub fn result_line(figure: &str, key: &str, value: f64) {
    println!("RESULT {figure} {key} {value:.4}");
}

/// Formats an accuracy as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Trains on a split, prints the accuracy (and optionally the confusion
/// matrix), emits the machine-readable `RESULT` line, and returns the
/// accuracy.
pub fn run_labeled(
    scale: &FigureScale,
    split: &deepcsi_data::Split,
    figure: &str,
    label: &str,
    show_confusion: bool,
) -> f64 {
    let t = std::time::Instant::now();
    let result = deepcsi_core::run_experiment(&scale.experiment(0xF16), split);
    println!(
        "{label:<40} acc {:>8}  (train {:>6}, test {:>6}, {:.1?})",
        pct(result.accuracy),
        split.train.len(),
        split.test.len(),
        t.elapsed()
    );
    if show_confusion {
        print_confusion(label, &result.confusion);
    }
    result_line(figure, label, result.accuracy);
    result.accuracy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_fast_profile() {
        let s = FigureScale::default();
        assert!(!s.paper_model);
        assert_eq!(s.spec.stride, 2);
        let exp = s.experiment(1);
        assert_eq!(exp.model.num_classes, 10);
    }

    #[test]
    fn gen_key_distinguishes_configs() {
        let a = GenConfig::default();
        let mut b = GenConfig::default();
        b.snapshots_per_trace += 1;
        assert_ne!(gen_key(&a), gen_key(&b));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9802), "98.02%");
    }
}
