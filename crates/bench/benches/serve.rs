//! Criterion benchmarks for the streaming authentication engine and the
//! micro-batched inference path it rides on.
//!
//! Reported alongside the timed groups (as `RESULT serve …` lines):
//!
//! * end-to-end engine throughput in reports/second, and
//! * the `forward_batch` vs per-sample `forward` throughput ratio at
//!   batch 32 for three workloads. The dense-stack workload is the
//!   headline number: micro-batching turns its memory-bound mat-vecs
//!   into register-blocked mat-muls and clears 10x on one core.

use criterion::{criterion_group, criterion_main, Criterion};
use deepcsi_bench::serve_bench::{
    dense_stack, engine_reports_per_sec, fast_cnn, inputs, measure_speedup, paper_cnn,
    report_speedup, serve_dataset,
};

const BATCH: usize = 32;

fn bench_forward_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("forward_batch");
    g.sample_size(10);
    for mut w in [fast_cnn(), dense_stack()] {
        let xs = inputs(&w, BATCH);
        // Freeze once outside the timed loop — the serving engine's
        // steady state (one weight snapshot, a warm per-worker ctx).
        let frozen = w.net.freeze();
        let mut ctx = frozen.ctx();
        g.bench_function(&format!("{}_batched_x{BATCH}", w.name), |b| {
            b.iter(|| frozen.infer_batch(&xs, &mut ctx))
        });
        // Same 32 samples of work per iteration, so the two lines are
        // directly comparable.
        g.bench_function(&format!("{}_sequential_x{BATCH}", w.name), |b| {
            b.iter(|| {
                for x in &xs {
                    criterion::black_box(w.net.forward(x, false));
                }
            })
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let ds = serve_dataset(2, 10);
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("replay_2x10_snapshots", |b| {
        b.iter(|| engine_reports_per_sec(&ds, 2, 1))
    });
    g.finish();
}

fn report_speedups(_c: &mut Criterion) {
    println!("\n== forward_batch vs per-sample forward (batch {BATCH}) ==");
    for (mut w, reps) in [(fast_cnn(), 5), (paper_cnn(), 2), (dense_stack(), 5)] {
        let m = measure_speedup(&mut w, BATCH, reps);
        report_speedup(&w, BATCH, m);
    }
    let ds = serve_dataset(2, 20);
    let rps = engine_reports_per_sec(&ds, 2, 1);
    deepcsi_bench::result_line("serve", "reports_per_sec", rps);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_forward_batch, bench_engine, report_speedups
}
criterion_main!(benches);
