//! Criterion micro-benchmarks for every stage the figures depend on.
//!
//! Mapping to the paper's evaluation (DESIGN.md §5):
//! * `channel`   — CFR synthesis feeding every figure's dataset.
//! * `bfi`       — Eq. (3) SVD, Algorithm 1, Eq. (7)/(8) quantization:
//!   the beamformee computation behind Figs. 8–17 and the Fig. 13
//!   quantization study.
//! * `frame`     — the monitor's encode/parse path (all captures).
//! * `input`     — Ṽ reconstruction + tensor assembly, incl. the Fig. 16
//!   offset-cleaning baseline.
//! * `classifier`— forward/backward of the fast and paper CNN profiles
//!   (training cost of Figs. 7–12, 15–17).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepcsi_bfi::{
    beamforming_matrix, decompose, dequantize, quantize, v_from_angles, BeamformingFeedback,
};
use deepcsi_channel::{AntennaArray, ChannelModel, Environment};
use deepcsi_core::ModelConfig;
use deepcsi_data::{clean_phase_offsets, InputSpec};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_impair::{apply_impairments, DeviceId, ImpairmentProfile, LinkState, RadioFingerprint};
use deepcsi_linalg::CMatrix;
use deepcsi_nn::{softmax_cross_entropy, Tensor};
use deepcsi_phy::{Codebook, MimoConfig, SubcarrierLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_cfr() -> (Vec<CMatrix>, Vec<i32>) {
    let env = Environment::fig6(0);
    let layout = SubcarrierLayout::vht80();
    let tones = layout.indices().to_vec();
    let model = ChannelModel::new(&env, layout);
    let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
    let rx = AntennaArray::new(env.beamformee1_position(3), 0.0, env.half_wavelength(), 2);
    let mut rng = StdRng::seed_from_u64(1);
    (model.cfr(&tx, &rx, &mut rng), tones)
}

fn sample_feedback() -> BeamformingFeedback {
    let (cfr, tones) = sample_cfr();
    BeamformingFeedback::from_cfr(&cfr, &tones, MimoConfig::paper_default(), Codebook::MU_HIGH)
}

fn bench_channel(c: &mut Criterion) {
    let env = Environment::fig6(0);
    let layout = SubcarrierLayout::vht80();
    let model = ChannelModel::new(&env, layout);
    let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
    let rx = AntennaArray::new(env.beamformee1_position(3), 0.0, env.half_wavelength(), 2);
    let mut g = c.benchmark_group("channel");
    g.sample_size(30);
    g.bench_function("cfr_snapshot_234_tones_3x2", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| model.cfr(&tx, &rx, &mut rng))
    });
    let profile = ImpairmentProfile::default();
    let tx_fp = RadioFingerprint::generate(DeviceId(0), 3, &profile);
    let rx_fp = RadioFingerprint::generate_rx(1, 2, &profile);
    let (cfr, tones) = sample_cfr();
    g.bench_function("apply_impairments_234_tones", |b| {
        let mut link = LinkState::new(&tx_fp, 1);
        b.iter(|| apply_impairments(&cfr, &tones, &tx_fp, &rx_fp, &profile, &mut link))
    });
    g.finish();
}

fn bench_bfi(c: &mut Criterion) {
    let (cfr, tones) = sample_cfr();
    let mimo = MimoConfig::paper_default();
    let mut g = c.benchmark_group("bfi");
    g.sample_size(30);
    g.bench_function("svd_v_extraction_3x2", |b| {
        b.iter(|| beamforming_matrix(&cfr[117], 2))
    });
    let v = beamforming_matrix(&cfr[117], 2);
    g.bench_function("givens_decompose_3x2", |b| b.iter(|| decompose(&v)));
    let dec = decompose(&v);
    g.bench_function("quantize_dequantize_one_tone", |b| {
        b.iter(|| dequantize(&quantize(&dec.angles, Codebook::MU_HIGH), Codebook::MU_HIGH))
    });
    g.bench_function("v_from_angles_3x2", |b| {
        b.iter(|| v_from_angles(&dec.angles, 3, 2))
    });
    g.bench_function("full_feedback_234_tones", |b| {
        b.iter(|| BeamformingFeedback::from_cfr(&cfr, &tones, mimo, Codebook::MU_HIGH))
    });
    let fb = sample_feedback();
    g.bench_function("reconstruct_v_series_234_tones", |b| {
        b.iter(|| fb.reconstruct())
    });
    g.finish();
}

fn bench_frame(c: &mut Criterion) {
    let fb = sample_feedback();
    let frame = BeamformingReportFrame::new(
        MacAddr::station(0),
        MacAddr::station(1),
        MacAddr::station(0),
        7,
        fb,
    );
    let bytes = frame.encode();
    let mut g = c.benchmark_group("frame");
    g.sample_size(50);
    g.bench_function("encode_234_tones", |b| b.iter(|| frame.encode()));
    g.bench_function("parse_234_tones", |b| {
        b.iter(|| BeamformingReportFrame::parse(&bytes).expect("parse"))
    });
    g.finish();
}

fn bench_input(c: &mut Criterion) {
    let fb = sample_feedback();
    let spec = InputSpec::paper_default();
    let fast = InputSpec::fast();
    let mut g = c.benchmark_group("input");
    g.sample_size(30);
    g.bench_function("tensor_assembly_full", |b| b.iter(|| spec.tensor(&fb)));
    g.bench_function("tensor_assembly_fast", |b| b.iter(|| fast.tensor(&fb)));
    g.bench_function("offset_cleaning_234_tones", |b| {
        b.iter_batched(
            || fb.reconstruct(),
            |mut series| clean_phase_offsets(&mut series),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    g.sample_size(20);

    let fast = ModelConfig::fast(10, 1).build((5, 1, 117));
    let x_fast = Tensor::zeros(vec![5, 1, 117]);
    g.bench_function("forward_fast_profile", |b| {
        let mut net = fast.clone();
        b.iter(|| net.forward(&x_fast, false))
    });
    g.bench_function("train_step_fast_profile", |b| {
        let mut net = fast.clone();
        b.iter(|| {
            net.zero_grads();
            let y = net.forward(&x_fast, true);
            let (_, grad) = softmax_cross_entropy(&y, 3);
            net.backward(&grad);
        })
    });

    let paper = ModelConfig::paper(10, 1).build((5, 1, 234));
    let x_paper = Tensor::zeros(vec![5, 1, 234]);
    g.bench_function("forward_paper_profile_489k_params", |b| {
        let mut net = paper.clone();
        b.iter(|| net.forward(&x_paper, false))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_channel, bench_bfi, bench_frame, bench_input, bench_classifier
}
criterion_main!(benches);
