//! Fused softmax + cross-entropy loss.

use crate::tensor::Tensor;

/// Computes the cross-entropy loss of `logits` against a class index and
/// the gradient `softmax(logits) − one_hot(target)` in one pass
/// (numerically stable log-sum-exp).
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, target: usize) -> (f32, Tensor) {
    let z = logits.as_slice();
    assert!(target < z.len(), "target class out of range");
    let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let sum_exp: f32 = z.iter().map(|&v| (v - max).exp()).sum();
    let log_sum = max + sum_exp.ln();
    let loss = log_sum - z[target];
    let mut grad = logits.clone();
    for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
        let p = (z[i] - log_sum).exp();
        *g = if i == target { p - 1.0 } else { p };
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_n() {
        let logits = Tensor::from_vec(vec![0.0; 10], vec![10]);
        let (loss, grad) = softmax_cross_entropy(&logits, 3);
        assert!((loss - (10f32).ln()).abs() < 1e-6);
        // Gradient sums to zero.
        let s: f32 = grad.as_slice().iter().sum();
        assert!(s.abs() < 1e-6);
        assert!((grad.as_slice()[3] - (0.1 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], vec![2]);
        let (loss, _) = softmax_cross_entropy(&logits, 0);
        assert!(loss < 1e-6);
        let (bad_loss, _) = softmax_cross_entropy(&logits, 1);
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn stable_under_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], vec![2]);
        let (loss, grad) = softmax_cross_entropy(&logits, 0);
        assert!(loss.is_finite());
        assert!(grad.is_finite());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.8, 1.2], vec![3]);
        let (_, grad) = softmax_cross_entropy(&logits, 2);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, 2);
            let (fm, _) = softmax_cross_entropy(&lm, 2);
            let want = (fp - fm) / (2.0 * eps);
            assert!((want - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let logits = Tensor::zeros(vec![2]);
        let _ = softmax_cross_entropy(&logits, 5);
    }
}
