//! Batched activations in a batch-innermost ("planes") layout.
//!
//! A [`Batch`] stores `b` same-shaped samples as `data[e * b + s]` —
//! element-major, sample-minor. Every per-weight inner loop in the batched
//! inference kernels then walks a contiguous run of `b` floats, which the
//! compiler autovectorizes to whatever SIMD width the build host offers
//! (`-C target-cpu=native` is set workspace-wide). This is what makes
//! [`crate::Network::forward_batch`] an order of magnitude faster than
//! `b` sequential forwards on a single core: one weight fetch serves the
//! whole batch, and the arithmetic runs 8–16 lanes wide.

use crate::tensor::Tensor;

/// A batch of same-shaped tensors in batch-innermost layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    shape: Vec<usize>,
    b: usize,
    data: Vec<f32>,
}

impl Batch {
    /// Creates a zero-filled batch of `b` samples of `shape`.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, empty shape or zero-sized dimension.
    pub fn zeros(shape: Vec<usize>, b: usize) -> Self {
        assert!(b > 0, "empty batch");
        assert!(!shape.is_empty(), "batch needs at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension");
        let elems: usize = shape.iter().product();
        Batch {
            shape,
            b,
            data: vec![0.0; elems * b],
        }
    }

    /// Interleaves `xs` into batch-innermost layout.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or the samples disagree in shape.
    pub fn from_tensors(xs: &[Tensor]) -> Self {
        assert!(!xs.is_empty(), "empty batch");
        let shape = xs[0].shape().to_vec();
        let b = xs.len();
        let elems = xs[0].len();
        let mut data = vec![0.0f32; elems * b];
        for (s, x) in xs.iter().enumerate() {
            assert_eq!(x.shape(), &shape[..], "batch samples must share a shape");
            for (e, &v) in x.as_slice().iter().enumerate() {
                data[e * b + s] = v;
            }
        }
        Batch { shape, b, data }
    }

    /// De-interleaves back into one tensor per sample.
    pub fn into_tensors(self) -> Vec<Tensor> {
        let elems = self.elems();
        (0..self.b)
            .map(|s| {
                let mut out = vec![0.0f32; elems];
                for (e, o) in out.iter_mut().enumerate() {
                    *o = self.data[e * self.b + s];
                }
                Tensor::from_vec(out, self.shape.clone())
            })
            .collect()
    }

    /// Per-sample shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.b
    }

    /// Elements per sample.
    pub fn elems(&self) -> usize {
        self.data.len() / self.b
    }

    /// The interleaved backing data (`[element][sample]`).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable interleaved backing data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The contiguous `b`-wide lane row of element `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[f32] {
        &self.data[e * self.b..(e + 1) * self.b]
    }

    /// Mutable lane row of element `e`.
    #[inline]
    pub fn row_mut(&mut self, e: usize) -> &mut [f32] {
        &mut self.data[e * self.b..(e + 1) * self.b]
    }

    /// Reinterprets the per-sample shape (volume must be preserved).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different volume.
    pub fn reshape(mut self, shape: Vec<usize>) -> Batch {
        let want: usize = shape.iter().product();
        assert_eq!(self.elems(), want, "reshape changes volume");
        self.shape = shape;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrip() {
        let xs: Vec<Tensor> = (0..3)
            .map(|s| Tensor::from_vec((0..6).map(|e| (s * 10 + e) as f32).collect(), vec![2, 3]))
            .collect();
        let batch = Batch::from_tensors(&xs);
        assert_eq!(batch.batch_size(), 3);
        assert_eq!(batch.elems(), 6);
        // Element 0 row holds sample values contiguously.
        assert_eq!(batch.row(0), &[0.0, 10.0, 20.0]);
        assert_eq!(batch.into_tensors(), xs);
    }

    #[test]
    fn reshape_keeps_lanes() {
        let xs = vec![Tensor::from_vec(vec![1.0, 2.0], vec![2]); 2];
        let b = Batch::from_tensors(&xs).reshape(vec![1, 1, 2]);
        assert_eq!(b.shape(), &[1, 1, 2]);
        assert_eq!(b.row(1), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn mismatched_shapes_panic() {
        let _ = Batch::from_tensors(&[Tensor::zeros(vec![2]), Tensor::zeros(vec![3])]);
    }
}
