//! Frozen inference: immutable models behind `Send + Sync` ops, with all
//! mutable scratch in a per-worker [`InferCtx`].
//!
//! Training needs `&mut` access everywhere — dropout draws from an RNG,
//! every layer caches activations for `backward`, optimizers mutate
//! weights. Serving needs none of that, but as long as inference lived on
//! the same trait the whole model was `Send`-but-not-`Sync` and every
//! worker thread had to clone the full weight set.
//! [`crate::Network::freeze`] breaks the entanglement:
//!
//! * [`FrozenModel`] — a snapshot of the weights behind [`InferOp`]s that
//!   take `&self`. It is `Send + Sync`, so one `Arc<FrozenModel>` serves
//!   any number of worker threads.
//! * [`InferCtx`] — one worker's scratch: the ping-pong activation planes
//!   and op-private workspaces. Buffers grow to a high-water mark on the
//!   first batches and are reused afterwards, so the steady-state hot
//!   path performs no allocation beyond the output tensors handed back
//!   to the caller.
//!
//! Activations live in the batch-innermost ("planes") layout:
//! `data[e * b + s]` — element-major, sample-minor — so every per-weight
//! inner loop walks a contiguous run of `b` floats and autovectorizes to
//! whatever SIMD width the build host offers (`-C target-cpu=native` is
//! set workspace-wide). One weight fetch serves the whole batch.
//!
//! Because each sample only ever reads its own lanes, outputs are
//! **bit-equal** to [`crate::Network::forward`] with `train = false` for
//! any batch size *and* any partition of the batch — which is what makes
//! [`FrozenModel::infer_batch_par`]'s thread split verdict-neutral by
//! construction (property-tested in `tests/proptests.rs`).

use crate::tensor::Tensor;
use deepcsi_obs::Profiler;
use std::fmt;

/// Grows `buf` to exactly `len` elements, never shrinking its capacity —
/// the steady-state path is a truncate/extend inside existing capacity,
/// not an allocation.
pub(crate) fn resize_buf<T: Default + Clone>(buf: &mut Vec<T>, len: usize) {
    if buf.len() < len {
        buf.resize(len, T::default());
    } else {
        buf.truncate(len);
    }
}

/// Transposes the `r × c` row-major matrix `src` into the `c × r`
/// row-major `dst`, in 32×32 tiles so both sides stay within a few open
/// cache lines (the quantize/dequantize layout hops between the f32
/// batch-innermost planes and the sample-major quantized planes).
pub(crate) fn transpose_i16(src: &[i16], dst: &mut [i16], r: usize, c: usize) {
    const T: usize = 32;
    for r0 in (0..r).step_by(T) {
        for c0 in (0..c).step_by(T) {
            for i in r0..(r0 + T).min(r) {
                for j in c0..(c0 + T).min(c) {
                    dst[j * r + i] = src[i * c + j];
                }
            }
        }
    }
}

/// An op chain whose per-sample shapes do not connect: op `op_index`
/// cannot accept the shape the previous op produces.
///
/// Returned by [`FrozenModel::validate`] / [`FrozenModel::from_ops_checked`]
/// so a mis-assembled pipeline (most likely a hand-built one via
/// [`FrozenModel::from_ops`], or an int8 chain quantized against the
/// wrong calibration) fails at freeze time with a precise diagnosis,
/// instead of panicking inside a serving worker at first inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Index of the offending op in the chain.
    pub op_index: usize,
    /// The offending op's name.
    pub op_name: String,
    /// The per-sample shape arriving at the op.
    pub in_shape: Vec<usize>,
    /// Why the op rejected it.
    pub reason: String,
}

impl fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op {} ({}) cannot accept per-sample shape {:?}: {}",
            self.op_index, self.op_name, self.in_shape, self.reason
        )
    }
}

impl std::error::Error for ShapeMismatch {}

/// One frozen layer: an immutable, thread-shareable inference op.
///
/// Implementations own a snapshot of whatever parameters they need and
/// keep **all** mutable state in the [`InferCtx`] — that is the whole
/// contract that makes a [`FrozenModel`] `Sync`. `apply` transforms the
/// context's current activation plane in place (element-wise ops,
/// reshapes) or through [`InferCtx::produce`] (shape-changing ops).
///
/// Every op must reproduce its training layer's `forward(x, false)`
/// arithmetic term-for-term — same accumulation order, same rounding —
/// so frozen inference stays bit-equal to the training-time forward
/// pass.
pub trait InferOp: Send + Sync {
    /// Human-readable op name (matches the source layer's).
    fn name(&self) -> &'static str;

    /// Transforms the context's current activation plane.
    fn apply(&self, ctx: &mut InferCtx);

    /// The per-sample shape this op would produce for `in_shape`, or an
    /// explanation when the op cannot accept it.
    ///
    /// This is the static half of the op contract:
    /// [`FrozenModel::validate`] chains it across the whole pipeline so
    /// a mis-assembled model fails at freeze time rather than at first
    /// inference. The default is shape-preserving (element-wise ops);
    /// shape-changing or rank-picky ops override it.
    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        Ok(in_shape.to_vec())
    }
}

/// One worker's inference scratch: activation planes and op workspaces.
///
/// Create one per worker thread with [`FrozenModel::ctx`] and reuse it
/// across calls — the buffers keep their high-water-mark capacity, so
/// after warm-up [`FrozenModel::infer_batch`] allocates nothing but the
/// returned output tensors.
#[derive(Debug, Default)]
pub struct InferCtx {
    /// Current activation plane, batch-innermost (`[element][sample]`).
    pub(crate) cur: Vec<f32>,
    /// The other half of the ping-pong pair ([`InferCtx::produce`]'s
    /// output plane, swapped into `cur` afterwards).
    nxt: Vec<f32>,
    /// Op-private workspaces (the attention block's pooled maps and
    /// logits live here).
    pub(crate) scratch0: Vec<f32>,
    pub(crate) scratch1: Vec<f32>,
    /// Quantized activation plane (int8-grid values `[-127, 127]`,
    /// i16-materialized for the integer dot-product kernels; empty for
    /// f32 models). **Sample-major** layout — `data[s * elems + e]` —
    /// the transpose of `cur`, so each sample's elements are contiguous
    /// (see `crate::quant::ops`).
    pub(crate) qcur: Vec<i16>,
    /// The quantized half of the ping-pong pair (see
    /// [`InferCtx::produce_q`]).
    qnxt: Vec<i16>,
    /// Int8 op workspace (the quantized conv's im2col patches live
    /// here).
    pub(crate) qscratch: Vec<i16>,
    /// `true` while the live activation is the quantized plane `qcur`
    /// (scale in `qscale`) rather than the f32 plane `cur`.
    pub(crate) int8: bool,
    /// Activation scale of `qcur` when `int8` is set: real value ≈
    /// `qcur[i] as f32 * qscale`.
    pub(crate) qscale: f32,
    /// Per-sample shape of `cur`.
    shape: Vec<usize>,
    /// Samples interleaved in `cur`.
    b: usize,
    /// Optional per-op profiler. When attached,
    /// [`FrozenModel::infer_batch`] wraps every op with a timestamp pair
    /// and records wall time + activation bytes into it; when absent the
    /// hot path pays a single `Option` branch per batch.
    profiler: Option<Profiler>,
}

impl InferCtx {
    /// Creates an empty context (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Interleaves `xs` into the current plane.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or the samples disagree in shape.
    pub(crate) fn load(&mut self, xs: &[Tensor]) {
        self.int8 = false;
        assert!(!xs.is_empty(), "empty batch");
        let shape = xs[0].shape();
        let elems = xs[0].len();
        let b = xs.len();
        resize_buf(&mut self.cur, elems * b);
        for (s, x) in xs.iter().enumerate() {
            assert_eq!(x.shape(), shape, "batch samples must share a shape");
            for (e, &v) in x.as_slice().iter().enumerate() {
                self.cur[e * b + s] = v;
            }
        }
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.b = b;
    }

    /// De-interleaves the current plane into one tensor per sample.
    fn unload(&self) -> Vec<Tensor> {
        assert!(
            !self.int8,
            "pipeline left its activation in the int8 domain (missing trailing dequantize op)"
        );
        let elems = self.elems();
        (0..self.b)
            .map(|s| {
                let mut out = vec![0.0f32; elems];
                for (e, o) in out.iter_mut().enumerate() {
                    *o = self.cur[e * self.b + s];
                }
                Tensor::from_vec(out, self.shape.clone())
            })
            .collect()
    }

    /// Per-sample shape of the current plane.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Samples interleaved in the current plane.
    pub fn batch_size(&self) -> usize {
        self.b
    }

    /// Elements per sample.
    pub fn elems(&self) -> usize {
        self.shape.iter().product()
    }

    /// The current plane (`[element][sample]` interleaved).
    pub fn data(&self) -> &[f32] {
        &self.cur
    }

    /// Applies an element-wise map to the current plane in place
    /// (activations).
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.cur {
            *v = f(*v);
        }
    }

    /// Reinterprets the per-sample shape without touching the data — in
    /// the batch-innermost layout a flatten/reshape is a pure relabel.
    ///
    /// # Panics
    ///
    /// Panics if the new shape changes the per-sample volume.
    pub fn set_shape(&mut self, shape: &[usize]) {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.elems(),
            "reshape changes volume"
        );
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Runs a shape-changing op: hands `f` the current plane and a
    /// correctly sized output plane (`zeroed` selects zero-filled, for
    /// accumulating kernels, vs uninitialised-but-overwritten), then
    /// swaps the output in as the new current plane.
    ///
    /// `f` receives `(input, output, in_shape, batch)`.
    pub fn produce(
        &mut self,
        out_shape: &[usize],
        zeroed: bool,
        f: impl FnOnce(&[f32], &mut [f32], &[usize], usize),
    ) {
        let out_len = out_shape.iter().product::<usize>() * self.b;
        resize_buf(&mut self.nxt, out_len);
        if zeroed {
            self.nxt.fill(0.0);
        }
        f(&self.cur, &mut self.nxt, &self.shape, self.b);
        std::mem::swap(&mut self.cur, &mut self.nxt);
        self.shape.clear();
        self.shape.extend_from_slice(out_shape);
    }

    /// `true` while the live activation is the int8 plane.
    pub fn is_int8(&self) -> bool {
        self.int8
    }

    /// Attaches a per-op profiler: every subsequent
    /// [`FrozenModel::infer_batch`] through this context records each
    /// op's wall time and activation bytes into it. Profiling is
    /// observation-only — outputs stay bit-equal to the unprofiled call.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Detaches and returns the profiler (e.g. to aggregate a worker's
    /// table at shutdown), leaving the context unprofiled.
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Bytes occupied by the live activation plane (f32 plane at 4
    /// bytes/element, the i16-materialized int8 plane at 2).
    fn plane_bytes(&self) -> u64 {
        let per = if self.int8 { 2 } else { 4 };
        (self.elems() * self.b * per) as u64
    }

    /// Quantizes the f32 plane into the quantized plane at `scale`
    /// (round-to-nearest, clamped to the symmetric int8 grid
    /// `[-127, 127]`), transposing from batch-innermost to the
    /// sample-major layout the integer kernels want, and enters the
    /// int8 domain.
    ///
    /// # Panics
    ///
    /// Panics if the context is already in the int8 domain.
    pub(crate) fn quantize_in_place(&mut self, scale: f32) {
        assert!(!self.int8, "quantize op applied to an int8 plane");
        resize_buf(&mut self.qnxt, self.cur.len());
        resize_buf(&mut self.qcur, self.cur.len());
        let inv = 1.0 / scale;
        // Two passes: a sequential (auto-vectorized) quantize pass, then
        // a pure-move i16 transpose — keeping the float math out of the
        // scattered-access loop.
        for (q, &x) in self.qnxt.iter_mut().zip(&self.cur) {
            *q = (x * inv).round().clamp(-127.0, 127.0) as i16;
        }
        let (elems, b) = (self.elems(), self.b);
        transpose_i16(&self.qnxt, &mut self.qcur, elems, b);
        self.int8 = true;
        self.qscale = scale;
    }

    /// Reconstructs the batch-innermost f32 plane from the sample-major
    /// quantized plane (`x = q · scale`) and leaves the int8 domain.
    ///
    /// # Panics
    ///
    /// Panics if the context is not in the int8 domain.
    pub(crate) fn dequantize_in_place(&mut self) {
        assert!(self.int8, "dequantize op applied to an f32 plane");
        resize_buf(&mut self.cur, self.qcur.len());
        resize_buf(&mut self.qnxt, self.qcur.len());
        let scale = self.qscale;
        // Mirror of `quantize_in_place`: move-only i16 transpose first,
        // then a sequential (auto-vectorized) dequantize pass.
        let (elems, b) = (self.elems(), self.b);
        transpose_i16(&self.qcur, &mut self.qnxt, b, elems);
        for (x, &q) in self.cur.iter_mut().zip(&self.qnxt) {
            *x = f32::from(q) * scale;
        }
        self.int8 = false;
    }

    /// The int8 analogue of [`InferCtx::produce`]: runs a shape-changing
    /// op over the quantized ping-pong pair (sample-major planes).
    /// `out_scale` becomes the new plane's activation scale. Output
    /// planes are handed over uninitialised-but-overwritten (every int8
    /// kernel fully writes its output), so there is no zero-fill
    /// variant.
    ///
    /// # Panics
    ///
    /// Panics if the context is not in the int8 domain.
    pub(crate) fn produce_q(
        &mut self,
        out_shape: &[usize],
        out_scale: f32,
        f: impl FnOnce(&[i16], &mut [i16], &[usize], usize),
    ) {
        assert!(self.int8, "int8 op applied to an f32 plane");
        let out_len = out_shape.iter().product::<usize>() * self.b;
        resize_buf(&mut self.qnxt, out_len);
        f(&self.qcur, &mut self.qnxt, &self.shape, self.b);
        std::mem::swap(&mut self.qcur, &mut self.qnxt);
        self.qscale = out_scale;
        self.shape.clear();
        self.shape.extend_from_slice(out_shape);
    }
}

/// Minimum samples routed to each thread of
/// [`FrozenModel::infer_batch_par`]: one full SIMD lane block (the
/// 16-wide granularity of the batched conv/dense kernels). Chunks are
/// also *aligned* to this, so every split chunk except the batch's
/// ragged tail runs the register-blocked kernels — parallelising never
/// demotes the math to the scalar path. A batch of `n` samples
/// therefore engages at most `max(1, n / 16)` threads.
pub const PAR_MIN_CHUNK: usize = 16;

/// An immutable inference snapshot of a [`crate::Network`].
///
/// Produced by [`crate::Network::freeze`]; holds only parameters behind
/// [`InferOp`]s, so it is `Send + Sync` and one `Arc<FrozenModel>` can be
/// shared by any number of serving workers — no per-worker weight clone.
/// All scratch lives in the per-worker [`InferCtx`].
///
/// ```
/// use deepcsi_nn::{Dense, Network, Selu, Tensor};
///
/// let mut net = Network::new();
/// net.push(Dense::new(4, 8, 1));
/// net.push(Selu::new());
/// net.push(Dense::new(8, 2, 2));
/// let frozen = net.freeze();
/// let mut ctx = frozen.ctx();
/// let x = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], vec![4]);
/// // Bit-equal to net.forward(&x, false), but &self + &mut ctx.
/// let y = frozen.infer(&x, &mut ctx);
/// assert_eq!(y.shape(), &[2]);
/// ```
pub struct FrozenModel {
    pub(crate) ops: Vec<Box<dyn InferOp>>,
}

impl std::fmt::Debug for FrozenModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrozenModel[")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{}", op.name())?;
        }
        write!(f, "]")
    }
}

impl FrozenModel {
    /// Wraps a pre-built op sequence (used by [`crate::Network::freeze`];
    /// also the seam for hand-assembled frozen pipelines).
    ///
    /// Performs no validation — when the expected input shape is known,
    /// prefer [`FrozenModel::from_ops_checked`], which proves the op
    /// shapes chain before the model can reach a serving worker.
    pub fn from_ops(ops: Vec<Box<dyn InferOp>>) -> Self {
        FrozenModel { ops }
    }

    /// Like [`FrozenModel::from_ops`], but first proves that the op
    /// chain accepts per-sample inputs of `input_shape` — each op's
    /// [`InferOp::out_shape`] must accept what the previous op produces.
    ///
    /// # Errors
    ///
    /// [`ShapeMismatch`] naming the first op that cannot accept its
    /// incoming shape, so a mis-assembled pipeline (hand-built, or an
    /// int8 chain quantized against the wrong calibration) fails at
    /// freeze time instead of at first inference.
    pub fn from_ops_checked(
        ops: Vec<Box<dyn InferOp>>,
        input_shape: &[usize],
    ) -> Result<Self, ShapeMismatch> {
        let model = FrozenModel { ops };
        model.validate(input_shape)?;
        Ok(model)
    }

    /// Statically chains every op's [`InferOp::out_shape`] from
    /// `input_shape`, returning the model's per-sample output shape.
    ///
    /// # Errors
    ///
    /// [`ShapeMismatch`] for the first op that rejects its incoming
    /// shape.
    pub fn validate(&self, input_shape: &[usize]) -> Result<Vec<usize>, ShapeMismatch> {
        let mut shape = input_shape.to_vec();
        for (op_index, op) in self.ops.iter().enumerate() {
            shape = op.out_shape(&shape).map_err(|reason| ShapeMismatch {
                op_index,
                op_name: op.name().to_string(),
                in_shape: shape.clone(),
                reason,
            })?;
        }
        Ok(shape)
    }

    /// A fresh scratch context for one worker thread.
    pub fn ctx(&self) -> InferCtx {
        InferCtx::new()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the model has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Single-sample inference, bit-equal to
    /// [`crate::Network::forward`]`(x, false)`.
    pub fn infer(&self, x: &Tensor, ctx: &mut InferCtx) -> Tensor {
        self.infer_batch(std::slice::from_ref(x), ctx)
            .pop()
            .expect("one output per input")
    }

    /// Micro-batched inference: one pass of every weight matrix serves
    /// the whole batch, SIMD across the batch lanes.
    ///
    /// Outputs are element-wise **bit-equal** to calling
    /// [`crate::Network::forward`] with `train = false` on each sample,
    /// for any batch size (no padding requirement). After `ctx` has seen
    /// its largest batch, the call allocates nothing but the returned
    /// tensors.
    pub fn infer_batch(&self, xs: &[Tensor], ctx: &mut InferCtx) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        ctx.load(xs);
        // The profiler is moved out for the loop so the ops can borrow
        // the context mutably; observation only — both paths run the
        // identical op sequence.
        if let Some(mut prof) = ctx.profiler.take() {
            prof.batch_begin();
            let samples = ctx.b as u64;
            for (i, op) in self.ops.iter().enumerate() {
                let in_bytes = ctx.plane_bytes();
                let t0 = std::time::Instant::now();
                op.apply(ctx);
                prof.record_op(i, op.name(), t0, in_bytes + ctx.plane_bytes(), samples);
            }
            ctx.profiler = Some(prof);
        } else {
            for op in &self.ops {
                op.apply(ctx);
            }
        }
        ctx.unload()
    }

    /// Thread-parallel [`FrozenModel::infer_batch`]: splits the batch's
    /// lane blocks into up to `ctxs.len()` contiguous chunks and runs
    /// each on its own thread against this one shared model.
    ///
    /// Because every sample only ever reads its own lanes, the partition
    /// cannot change any output: results are bit-equal to the
    /// single-context call (and to `forward(x, false)`) for **any**
    /// context count — thread count never changes a verdict. With one
    /// context no thread is spawned, and small batches use fewer
    /// threads than contexts — each thread gets at least one full
    /// [`PAR_MIN_CHUNK`]-sample lane block (and chunks are lane-block
    /// *aligned*, so the split never demotes the SIMD kernels to their
    /// scalar ragged path), which also means a near-empty micro-batch
    /// never pays a spawn it cannot amortise. Usable parallelism is
    /// therefore `max(1, batch / PAR_MIN_CHUNK)`, whatever the context
    /// count. Threads are scoped per call — on very fast models the
    /// spawn/join overhead can rival the inference itself; the serving
    /// engine therefore runs [`crate::InferPool`], which executes the
    /// *identical* [`plan_split`] partition on persistent lane threads.
    ///
    /// # Panics
    ///
    /// Panics if `ctxs` is empty or the samples disagree in shape (the
    /// same contract as [`FrozenModel::infer_batch`], enforced up front
    /// so it cannot depend on how the batch was split), and propagates
    /// a panic from an inference thread.
    pub fn infer_batch_par(&self, xs: &[Tensor], ctxs: &mut [InferCtx]) -> Vec<Tensor> {
        assert!(!ctxs.is_empty(), "need at least one InferCtx");
        if xs.is_empty() {
            return Vec::new();
        }
        assert!(
            xs.iter().all(|x| x.shape() == xs[0].shape()),
            "batch samples must share a shape"
        );
        let (threads, chunk) = plan_split(xs.len(), ctxs.len());
        if threads == 1 {
            return self.infer_batch(xs, &mut ctxs[0]);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = xs
                .chunks(chunk)
                .zip(ctxs.iter_mut())
                .map(|(part, ctx)| scope.spawn(move || self.infer_batch(part, ctx)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("inference thread panicked"))
                .collect()
        })
    }
}

/// The `(threads, chunk_len)` partition shared bit-for-bit by
/// [`FrozenModel::infer_batch_par`] and [`crate::InferPool`]: both paths
/// must split a batch identically so swapping one for the other can
/// never reorder or regroup samples.
///
/// * Floor division picks the thread count: a lane below one full
///   [`PAR_MIN_CHUNK`] block of work costs more to hand off than it
///   saves, so usable parallelism is `max(1, batch / PAR_MIN_CHUNK)`
///   regardless of how many lanes exist.
/// * Chunks are lane-block *aligned*: every chunk except the batch's own
///   ragged tail is a multiple of the SIMD width, so each lane runs the
///   register-blocked kernels, not the scalar fallback. Rounding the
///   chunk up can only *reduce* the chunk count, so zipping chunks
///   against lanes never drops samples — and since `chunk_len ≥ 1` no
///   chunk is ever empty.
pub fn plan_split(batch: usize, lanes: usize) -> (usize, usize) {
    let threads = lanes.min((batch / PAR_MIN_CHUNK).max(1));
    if threads == 1 {
        return (1, batch.max(1));
    }
    (
        threads,
        batch.div_ceil(threads).next_multiple_of(PAR_MIN_CHUNK),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::layers::{Dense, Selu};
    use crate::network::Network;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn frozen_model_is_send_sync() {
        assert_send_sync::<FrozenModel>();
        assert_send_sync::<std::sync::Arc<FrozenModel>>();
    }

    fn tiny_frozen() -> (Network, FrozenModel) {
        let mut net = Network::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Selu::new());
        net.push(Dense::new(5, 2, 2));
        let frozen = net.freeze();
        (net, frozen)
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let (mut net, frozen) = tiny_frozen();
        let mut ctx = frozen.ctx();
        let x = Tensor::from_vec(vec![0.3, -1.2, 0.7], vec![3]);
        assert_eq!(
            frozen.infer(&x, &mut ctx).as_slice(),
            net.forward(&x, false).as_slice()
        );
    }

    #[test]
    fn ctx_buffers_reach_steady_state() {
        let (_, frozen) = tiny_frozen();
        let mut ctx = frozen.ctx();
        let xs: Vec<Tensor> = (0..8)
            .map(|s| Tensor::from_vec(vec![s as f32, 1.0, -1.0], vec![3]))
            .collect();
        let _ = frozen.infer_batch(&xs, &mut ctx);
        let caps = (ctx.cur.capacity(), ctx.nxt.capacity());
        // Same-size and smaller batches must not grow the buffers.
        let _ = frozen.infer_batch(&xs, &mut ctx);
        let _ = frozen.infer_batch(&xs[..3], &mut ctx);
        assert_eq!(caps, (ctx.cur.capacity(), ctx.nxt.capacity()));
    }

    #[test]
    fn parallel_split_is_bit_identical() {
        let (_, frozen) = tiny_frozen();
        // 70 samples: enough full 16-wide lane blocks that 2–4 contexts
        // genuinely split (plus a ragged tail), while 16 contexts clamp
        // down to the per-thread minimum chunk.
        let xs: Vec<Tensor> = (0..70)
            .map(|s| Tensor::from_vec(vec![s as f32 * 0.3, -(s as f32), 0.5], vec![3]))
            .collect();
        let mut one = frozen.ctx();
        let want = frozen.infer_batch(&xs, &mut one);
        for threads in [2usize, 3, 4, 16] {
            let mut ctxs: Vec<InferCtx> = (0..threads).map(|_| frozen.ctx()).collect();
            let got = frozen.infer_batch_par(&xs, &mut ctxs);
            assert_eq!(got.len(), want.len());
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.as_slice(), g.as_slice(), "threads={threads}");
            }
        }
        // Tiny batches fall back to the no-spawn single-context path.
        let mut ctxs: Vec<InferCtx> = (0..4).map(|_| frozen.ctx()).collect();
        let small = frozen.infer_batch_par(&xs[..3], &mut ctxs);
        for (w, g) in want.iter().zip(&small) {
            assert_eq!(w.as_slice(), g.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn parallel_mixed_shapes_panic_regardless_of_split() {
        // The shape contract cannot depend on how the batch is chunked:
        // 32 + 32 same-shape runs would split into internally-uniform
        // chunks at 2 contexts, so the check must run up front.
        let (_, frozen) = tiny_frozen();
        let mut xs = vec![Tensor::zeros(vec![3]); 32];
        xs.extend(vec![Tensor::zeros(vec![1, 3]); 32]);
        let mut ctxs = [frozen.ctx(), frozen.ctx()];
        let _ = frozen.infer_batch_par(&xs, &mut ctxs);
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let (_, frozen) = tiny_frozen();
        let mut ctx = frozen.ctx();
        assert!(frozen.infer_batch(&[], &mut ctx).is_empty());
        let mut ctxs = [frozen.ctx(), frozen.ctx()];
        assert!(frozen.infer_batch_par(&[], &mut ctxs).is_empty());
    }

    #[test]
    fn profiled_inference_is_bit_identical_and_fills_the_table() {
        let (_, frozen) = tiny_frozen();
        let xs: Vec<Tensor> = (0..6)
            .map(|s| Tensor::from_vec(vec![s as f32 * 0.4, -0.9, 1.1], vec![3]))
            .collect();
        let mut plain = frozen.ctx();
        let want = frozen.infer_batch(&xs, &mut plain);

        let mut ctx = frozen.ctx();
        ctx.set_profiler(Profiler::new());
        for _ in 0..3 {
            let got = frozen.infer_batch(&xs, &mut ctx);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.as_slice(), g.as_slice());
            }
        }
        let prof = ctx.take_profiler().expect("profiler still attached");
        assert!(ctx.profiler().is_none());
        let ops = prof.ops();
        assert_eq!(ops.len(), frozen.len());
        assert_eq!(
            ops.iter().map(|o| o.name).collect::<Vec<_>>(),
            vec!["dense", "selu", "dense"]
        );
        for o in ops {
            assert_eq!(o.calls, 3);
            assert_eq!(o.samples, 18);
            assert!(o.bytes > 0, "activation traffic recorded");
        }
    }

    #[test]
    fn debug_lists_op_chain() {
        let (_, frozen) = tiny_frozen();
        let s = format!("{frozen:?}");
        assert!(s.contains("dense"), "{s}");
        assert!(s.contains("selu"), "{s}");
    }

    #[test]
    fn validate_chains_shapes_through_the_model() {
        let (_, frozen) = tiny_frozen();
        assert_eq!(frozen.validate(&[3]).unwrap(), vec![2]);
        // Rank-1 input of the wrong width is caught at the first op.
        let err = frozen.validate(&[4]).unwrap_err();
        assert_eq!(err.op_index, 0);
        assert_eq!(err.op_name, "dense");
        assert_eq!(err.in_shape, vec![4]);
    }

    #[test]
    fn from_ops_checked_accepts_a_well_formed_chain() {
        let ops = vec![Dense::new(3, 5, 1).freeze(), Dense::new(5, 2, 2).freeze()];
        let model = FrozenModel::from_ops_checked(ops, &[3]).unwrap();
        assert_eq!(model.len(), 2);
        let mut ctx = model.ctx();
        let y = model.infer(&Tensor::zeros(vec![3]), &mut ctx);
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn from_ops_checked_rejects_a_broken_chain_at_freeze_time() {
        // 3 → 5, then an op expecting 4 inputs: the mis-assembly is
        // diagnosed here, not at first inference.
        let ops = vec![Dense::new(3, 5, 1).freeze(), Dense::new(4, 2, 2).freeze()];
        let err = FrozenModel::from_ops_checked(ops, &[3]).unwrap_err();
        assert_eq!(err.op_index, 1);
        assert_eq!(err.op_name, "dense");
        assert_eq!(err.in_shape, vec![5]);
        assert!(err.to_string().contains("dense"), "{err}");
        // The unchecked constructor still accepts it (compatibility),
        // but validate() reports the same diagnosis.
        let ops = vec![Dense::new(3, 5, 1).freeze(), Dense::new(4, 2, 2).freeze()];
        let model = FrozenModel::from_ops(ops);
        assert!(model.validate(&[3]).is_err());
    }
}
