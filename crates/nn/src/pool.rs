//! Persistent inference pool: the serving replacement for the
//! spawn-per-call [`FrozenModel::infer_batch_par`].
//!
//! `infer_batch_par` spawns and joins scoped threads on every call. On
//! the small micro-batches a per-report CSI stream produces, the
//! spawn/join overhead rivals the inference itself — `BENCH_parallel`
//! recorded the fast profile *losing* at 2 and 4 threads. The pool
//! fixes the regime: lane threads are spawned once, each parks on a
//! channel owning its [`InferCtx`] for the process lifetime, and a call
//! hands each lane a borrowed block of the batch and collects the
//! results in order. The hot path is two channel operations per helper
//! lane — no thread creation, no stack setup, no join.
//!
//! The partition is [`plan_split`], the *same* function the scoped-
//! thread path uses, so pool outputs are bit-equal to
//! [`FrozenModel::infer_batch`] (and to `forward(x, false)`) for any
//! batch size and any lane count — swapping the engine onto the pool
//! can never change a verdict.
//!
//! # Why `unsafe` lives here (and only here)
//!
//! A lane receives `&FrozenModel` and `&[Tensor]` that borrow from the
//! caller's stack frame. Scoped threads prove that lifetime to the
//! compiler structurally; a persistent thread cannot, so the borrow is
//! erased into a raw [`Job`] and re-materialised on the lane. The
//! safety argument is confinement in time, enforced two ways:
//!
//! * [`InferPool::infer_batch`] blocks on every dispatched lane's reply
//!   before returning, so on the normal path no `Job` outlives the
//!   borrow it was built from.
//! * If the caller's own chunk panics mid-call, a drain guard's `Drop`
//!   still receives every outstanding reply during unwinding — the
//!   borrow stays alive until every lane has finished touching it.
//!
//! Nothing else in the crate needs `unsafe`; the crate root keeps
//! `#![deny(unsafe_code)]` and this file opts back in alone.
#![allow(unsafe_code)]

use crate::frozen::{plan_split, FrozenModel, InferCtx};
use crate::tensor::Tensor;
use deepcsi_obs::{merge_op_stats, OpStat, Profiler};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A borrowed inference request with its lifetimes erased for the trip
/// across the channel: `model` and `xs..xs+len` point into the calling
/// frame of [`InferPool::infer_batch`], which stays on the stack until
/// the lane's reply (or the drain guard) proves the lane is done.
#[derive(Clone, Copy)]
struct Job {
    model: *const FrozenModel,
    xs: *const Tensor,
    len: usize,
}

// SAFETY: the pointers are only ever dereferenced between dispatch and
// reply, and `infer_batch` (plus its drain guard on the panic path)
// never lets the borrowed frame unwind before every reply is in.
// `FrozenModel` and `Tensor` are themselves `Sync`/`Send` data.
unsafe impl Send for Job {}

enum Msg {
    /// Run inference over the job's block and reply with the outputs.
    Run(Job),
    /// Install (or clear) the lane's per-op profiler.
    SetProfiler(Box<Option<Profiler>>),
    /// Reply with a snapshot of the lane profiler's op table.
    Profile,
}

enum Reply {
    Outputs(Vec<Tensor>),
    /// The op chain unwound mid-batch; the lane itself is still parked
    /// and serviceable (its scratch is overwritten by the next load).
    Panicked,
    Profile(Vec<OpStat>),
}

/// One parked helper thread and its two channel endpoints. Lane 0 is
/// the caller itself (it runs the first chunk in place), so a pool of
/// `n` lanes holds `n - 1` of these.
struct Lane {
    tx: Sender<Msg>,
    rx: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

fn spawn_lane(index: usize) -> Lane {
    let (tx, job_rx) = channel::<Msg>();
    let (reply_tx, rx) = channel::<Reply>();
    let handle = std::thread::Builder::new()
        .name(format!("deepcsi-infer-{index}"))
        .spawn(move || lane_main(job_rx, reply_tx))
        .expect("spawn inference lane");
    Lane {
        tx,
        rx,
        handle: Some(handle),
    }
}

fn lane_main(jobs: Receiver<Msg>, replies: Sender<Reply>) {
    let mut ctx = InferCtx::new();
    // Whether `SetProfiler` armed this lane — a contained panic loses
    // the profiler mid-batch (it is moved out for the op loop), so the
    // lane re-arms a fresh one rather than silently dropping out of the
    // merged table.
    let mut armed = false;
    while let Ok(msg) = jobs.recv() {
        match msg {
            Msg::Run(job) => {
                // SAFETY: the dispatching `infer_batch` frame is pinned
                // until it receives this lane's reply (or its drain
                // guard does), so the model and slice are live for the
                // whole dereference. `len ≥ 1`: `plan_split` never
                // produces an empty chunk.
                let (model, xs) =
                    unsafe { (&*job.model, std::slice::from_raw_parts(job.xs, job.len)) };
                // Contain an op panic to this job: the lane thread must
                // outlive it, or the *next* dispatch would race the
                // dying thread's channel teardown. Scratch state after
                // an unwind is garbage, but every `infer_batch` starts
                // by overwriting it (`load`), so the lane stays sound.
                let reply = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    model.infer_batch(xs, &mut ctx)
                })) {
                    Ok(out) => Reply::Outputs(out),
                    Err(_) => {
                        if armed && ctx.profiler().is_none() {
                            ctx.set_profiler(Profiler::new());
                        }
                        Reply::Panicked
                    }
                };
                if replies.send(reply).is_err() {
                    return;
                }
            }
            Msg::SetProfiler(profiler) => {
                armed = profiler.is_some();
                match *profiler {
                    Some(p) => ctx.set_profiler(p),
                    None => drop(ctx.take_profiler()),
                }
            }
            Msg::Profile => {
                let table = ctx.profiler().map(|p| p.ops().to_vec()).unwrap_or_default();
                if replies.send(Reply::Profile(table)).is_err() {
                    return;
                }
            }
        }
    }
}

/// Receives outstanding lane replies even if the caller's in-place
/// chunk panics: dropped during unwinding, it blocks until every
/// dispatched lane has replied (or hung up), so no lane can still be
/// reading the caller's frame once the frame unwinds past it.
struct Drain<'a> {
    lanes: &'a [Lane],
    /// Next lane index to collect from.
    next: usize,
    /// One past the last lane that was handed a job.
    dispatched: usize,
}

impl Drain<'_> {
    /// Collects the next lane's outputs in dispatch order; `None` means
    /// the lane's job panicked (or, unexpectedly, the lane hung up).
    fn recv_next(&mut self) -> Option<Vec<Tensor>> {
        let lane = &self.lanes[self.next];
        self.next += 1;
        match lane.rx.recv() {
            Ok(Reply::Outputs(out)) => Some(out),
            // A `Profile` here is impossible (replies come back in
            // request order and every `Run` gets exactly one reply),
            // but treat it like a failed job rather than trusting it.
            Ok(Reply::Panicked) | Ok(Reply::Profile(_)) | Err(_) => None,
        }
    }
}

impl Drop for Drain<'_> {
    fn drop(&mut self) {
        for lane in &self.lanes[self.next..self.dispatched] {
            // A reply or a hangup both prove the lane is done with the
            // job's borrow; ignore which.
            let _ = lane.rx.recv();
        }
    }
}

/// A persistent per-engine inference pool: `lanes` contexts total — one
/// owned in place by the caller, the rest parked on dedicated threads
/// that live as long as the pool.
///
/// [`InferPool::infer_batch`] is a drop-in for
/// [`FrozenModel::infer_batch_par`] with the spawn/join removed:
/// outputs are bit-identical for any batch size and lane count because
/// both paths share [`plan_split`]. The model is passed per call, so
/// one pool serves f32 and int8 snapshots alike and survives model
/// swaps.
///
/// A panicking op poisons only its own call: the lane contains the
/// unwind, the in-flight `infer_batch` panics with the same message as
/// the scoped-thread path, and every lane stays parked and serviceable
/// for the next batch.
pub struct InferPool {
    /// Lane 0: the caller's own context, run in place per call.
    local: InferCtx,
    helpers: Vec<Lane>,
    /// Lanes engaged by the most recent `infer_batch` call.
    engaged: usize,
}

impl std::fmt::Debug for InferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferPool")
            .field("lanes", &self.lanes())
            .field("engaged", &self.engaged)
            .finish()
    }
}

impl InferPool {
    /// Builds a pool with `lanes` total inference lanes, parking
    /// `lanes - 1` helper threads. Contexts are model-independent
    /// (buffers grow on first use), so the pool outlives any particular
    /// frozen snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> InferPool {
        assert!(lanes >= 1, "need at least one inference lane");
        InferPool {
            local: InferCtx::new(),
            helpers: (1..lanes).map(spawn_lane).collect(),
            engaged: 0,
        }
    }

    /// Total lane count (helper threads plus the caller's own lane).
    pub fn lanes(&self) -> usize {
        self.helpers.len() + 1
    }

    /// How many lanes the most recent [`InferPool::infer_batch`] call
    /// actually engaged (1 for a batch below two lane blocks, up to
    /// [`InferPool::lanes`] under load; 0 before any call). The
    /// engine exports this as pool occupancy.
    pub fn last_engaged(&self) -> usize {
        self.engaged
    }

    /// Runs `xs` through `model` across the pool's lanes, bit-equal to
    /// [`FrozenModel::infer_batch`] on a single context for any batch
    /// size and lane count (both derive the partition from
    /// [`plan_split`]).
    ///
    /// The caller runs chunk 0 on its own lane while helpers run the
    /// rest, then collects replies in dispatch order — output order is
    /// exactly input order.
    ///
    /// # Panics
    ///
    /// Panics if the samples disagree in shape, and surfaces a lane's
    /// contained op panic as `"inference thread panicked"` (the
    /// scoped-thread path's message); the pool itself stays usable
    /// afterwards.
    pub fn infer_batch(&mut self, model: &FrozenModel, xs: &[Tensor]) -> Vec<Tensor> {
        if xs.is_empty() {
            self.engaged = 0;
            return Vec::new();
        }
        assert!(
            xs.iter().all(|x| x.shape() == xs[0].shape()),
            "batch samples must share a shape"
        );
        let (threads, chunk) = plan_split(xs.len(), self.lanes());
        if threads == 1 {
            self.engaged = 1;
            return model.infer_batch(xs, &mut self.local);
        }
        let mut parts = xs.chunks(chunk);
        let local_part = parts.next().expect("non-empty batch has a first chunk");
        let mut dispatched = 0;
        for part in parts {
            let job = Job {
                model,
                xs: part.as_ptr(),
                len: part.len(),
            };
            // Lanes contain job panics, so a lane thread lives as long
            // as the pool and the send cannot fail.
            self.helpers[dispatched]
                .tx
                .send(Msg::Run(job))
                .expect("pool lane outlives the pool's dispatches");
            dispatched += 1;
        }
        self.engaged = dispatched + 1;
        // From here to the last reply the borrows of `model`/`xs` are
        // shared with the helper lanes; the guard keeps that window
        // closed even if our own chunk panics below.
        let mut guard = Drain {
            lanes: &self.helpers,
            next: 0,
            dispatched,
        };
        let mut out = model.infer_batch(local_part, &mut self.local);
        for _ in 0..dispatched {
            match guard.recv_next() {
                Some(mut part) => out.append(&mut part),
                // Guard's Drop drains the lanes after the dead one.
                None => panic!("inference thread panicked"),
            }
        }
        out
    }

    /// Arms every lane with a profiler — index 0 goes to the caller's
    /// in-place lane, the rest to the helpers in order (so per-lane
    /// tracer bindings land on the thread they were built for).
    /// [`InferPool::profile_table`] then merges all lanes' tables.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`InferPool::lanes`] profilers are given.
    pub fn set_profilers(&mut self, profilers: Vec<Profiler>) {
        assert_eq!(profilers.len(), self.lanes(), "one profiler per lane");
        let mut profilers = profilers.into_iter();
        self.local
            .set_profiler(profilers.next().expect("lane 0 profiler"));
        for (lane, prof) in self.helpers.iter().zip(profilers) {
            lane.tx
                .send(Msg::SetProfiler(Box::new(Some(prof))))
                .expect("pool lane outlives the pool's dispatches");
        }
    }

    /// Merged per-op profile across every lane (empty when
    /// [`InferPool::set_profilers`] was never called): each helper is
    /// asked for a snapshot of its table, and the caller-lane table is
    /// merged in locally. Sample counts sum to exactly the samples
    /// inferred — every sample runs on exactly one lane.
    pub fn profile_table(&mut self) -> Vec<OpStat> {
        let mut table = Vec::new();
        if let Some(prof) = self.local.profiler() {
            merge_op_stats(&mut table, prof.ops());
        }
        for lane in &self.helpers {
            lane.tx
                .send(Msg::Profile)
                .expect("pool lane outlives the pool's dispatches");
            if let Ok(Reply::Profile(ops)) = lane.rx.recv() {
                merge_op_stats(&mut table, &ops);
            }
        }
        table
    }
}

impl Drop for InferPool {
    fn drop(&mut self) {
        for mut lane in self.helpers.drain(..) {
            // Hang up the job channel so the lane's recv loop exits,
            // then reap the thread (ignoring a panicked lane's payload).
            drop(lane.tx);
            if let Some(handle) = lane.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Selu};
    use crate::network::Network;
    use crate::PAR_MIN_CHUNK;

    fn tiny_frozen() -> FrozenModel {
        let mut net = Network::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Selu::new());
        net.push(Dense::new(5, 2, 2));
        net.freeze()
    }

    fn batch(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                Tensor::from_vec(
                    vec![
                        i as f32 * 0.1 - 1.0,
                        (i % 7) as f32 * 0.3,
                        -(i as f32) * 0.05,
                    ],
                    vec![3],
                )
            })
            .collect()
    }

    #[test]
    fn pool_is_bit_identical_to_single_context_for_any_split() {
        let frozen = tiny_frozen();
        let mut one = frozen.ctx();
        for lanes in [1usize, 2, 3, 4, 16] {
            let mut pool = InferPool::new(lanes);
            for n in [1usize, 3, PAR_MIN_CHUNK, 33, 64, 70] {
                let xs = batch(n);
                let want = frozen.infer_batch(&xs, &mut one);
                let got = pool.infer_batch(&frozen, &xs);
                assert_eq!(got.len(), want.len(), "lanes {lanes} batch {n}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.as_slice(), w.as_slice(), "lanes {lanes} batch {n}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_engages_no_lane() {
        let frozen = tiny_frozen();
        let mut pool = InferPool::new(4);
        assert!(pool.infer_batch(&frozen, &[]).is_empty());
        assert_eq!(pool.last_engaged(), 0);
    }

    #[test]
    fn engagement_tracks_the_plan_split() {
        let frozen = tiny_frozen();
        let mut pool = InferPool::new(4);
        // Below two lane blocks: inline, single lane.
        pool.infer_batch(&frozen, &batch(PAR_MIN_CHUNK));
        assert_eq!(pool.last_engaged(), 1);
        // Four full lane blocks: every lane engaged.
        pool.infer_batch(&frozen, &batch(4 * PAR_MIN_CHUNK));
        assert_eq!(pool.last_engaged(), 4);
    }

    #[test]
    fn mixed_shapes_panic_before_any_dispatch() {
        let frozen = tiny_frozen();
        let mut pool = InferPool::new(2);
        let mut xs = batch(32);
        xs.push(Tensor::from_vec(vec![0.0; 4], vec![4]));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.infer_batch(&frozen, &xs)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("share a shape"), "got {msg:?}");
    }

    /// Shape-preserving op that panics when it sees a poisoned input
    /// value — lets a test kill one specific lane (the one whose chunk
    /// holds the poison) while the others finish normally.
    struct PanicOnPoison;

    impl crate::frozen::InferOp for PanicOnPoison {
        fn name(&self) -> &'static str {
            "panic_on_poison"
        }

        fn apply(&self, ctx: &mut InferCtx) {
            assert!(
                !ctx.data().iter().any(|&v| v > 100.0),
                "poisoned input reached the op"
            );
        }
    }

    #[test]
    fn lane_panic_is_contained_and_the_pool_stays_usable() {
        let trap = FrozenModel::from_ops(vec![Box::new(PanicOnPoison)]);
        let frozen = tiny_frozen();
        let mut pool = InferPool::new(2);

        // Poison only the second chunk: the helper lane dies while the
        // caller's own chunk succeeds.
        let mut xs = batch(2 * PAR_MIN_CHUNK);
        xs[PAR_MIN_CHUNK] = Tensor::from_vec(vec![1000.0, 0.0, 0.0], vec![3]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.infer_batch(&trap, &xs)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("inference thread panicked"), "got {msg:?}");

        // The pool recovers: the lane contained the unwind and the next
        // batch is bit-identical to the single-context path.
        let xs = batch(2 * PAR_MIN_CHUNK);
        let mut one = frozen.ctx();
        let want = frozen.infer_batch(&xs, &mut one);
        let got = pool.infer_batch(&frozen, &xs);
        assert_eq!(pool.last_engaged(), 2);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.as_slice(), w.as_slice());
        }
    }

    #[test]
    fn profile_table_accounts_every_sample_exactly_once() {
        let frozen = tiny_frozen();
        let mut pool = InferPool::new(3);
        pool.set_profilers((0..3).map(|_| Profiler::new()).collect());
        let n = 3 * PAR_MIN_CHUNK;
        pool.infer_batch(&frozen, &batch(n));
        pool.infer_batch(&frozen, &batch(n));
        let table = pool.profile_table();
        assert_eq!(table.len(), 3, "one row per op");
        for stat in &table {
            assert_eq!(stat.samples, 2 * n as u64, "op {}", stat.name);
        }
    }
}
