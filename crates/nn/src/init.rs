//! Weight initialisation.

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// LeCun-normal initialisation: zero-mean Gaussian with `σ = 1/√fan_in`.
///
/// This is the initialisation self-normalising (SELU) networks require to
/// keep activations at zero mean / unit variance through depth.
pub(crate) fn lecun_normal<R: Rng>(rng: &mut R, fan_in: usize, n: usize) -> Vec<f32> {
    let std = 1.0 / (fan_in.max(1) as f32).sqrt();
    (0..n).map(|_| gaussian(rng) * std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lecun_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = lecun_normal(&mut rng, 100, 50_000);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        let var: f32 = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var - 0.01).abs() < 0.002, "var {var} should be 1/100");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(lecun_normal(&mut a, 10, 32), lecun_normal(&mut b, 10, 32));
    }
}
