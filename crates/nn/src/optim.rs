//! Optimizers.

use crate::network::Network;

/// An optimizer updates a network's weights from its accumulated
/// gradients.
pub trait Optimizer {
    /// Applies one update step; gradient accumulators are left untouched
    /// (call [`Network::zero_grads`] before the next batch).
    fn step(&mut self, net: &mut Network);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network) {
        for p in net.params() {
            for (w, g) in p.w.iter_mut().zip(p.g.iter()) {
                *w -= self.lr * g;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction — the workhorse the DeepCSI
/// classifier trains with.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the given learning rate and the standard
    /// (β₁, β₂, ε) = (0.9, 0.999, 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current step count.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network) {
        let mut params = net.params();
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.w.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.w.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "optimizer bound to another net");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (pi, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[pi];
            let v = &mut self.v[pi];
            for i in 0..p.w.len() {
                let g = p.g[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p.w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::softmax_cross_entropy;
    use crate::tensor::Tensor;

    fn one_layer() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(2, 2, 3));
        net
    }

    fn loss_of(net: &mut Network, x: &Tensor, y: usize) -> f32 {
        let out = net.forward(x, false);
        softmax_cross_entropy(&out, y).0
    }

    #[test]
    fn sgd_descends() {
        let mut net = one_layer();
        let mut opt = Sgd::new(0.5);
        let x = Tensor::from_vec(vec![1.0, -1.0], vec![2]);
        let before = loss_of(&mut net, &x, 0);
        for _ in 0..20 {
            net.zero_grads();
            let out = net.forward(&x, true);
            let (_, g) = softmax_cross_entropy(&out, 0);
            net.backward(&g);
            opt.step(&mut net);
        }
        let after = loss_of(&mut net, &x, 0);
        assert!(after < before * 0.3, "SGD failed: {before} → {after}");
    }

    #[test]
    fn adam_descends_faster_than_sgd_here() {
        let x = Tensor::from_vec(vec![1.0, -1.0], vec![2]);
        let run = |mut opt: Box<dyn FnMut(&mut Network)>| {
            let mut net = one_layer();
            for _ in 0..30 {
                net.zero_grads();
                let out = net.forward(&x, true);
                let (_, g) = softmax_cross_entropy(&out, 1);
                net.backward(&g);
                opt(&mut net);
            }
            loss_of(&mut net, &x, 1)
        };
        let mut adam = Adam::new(0.05);
        let adam_loss = run(Box::new(move |n| adam.step(n)));
        assert!(adam_loss < 0.1, "Adam stuck at {adam_loss}");
    }

    #[test]
    fn adam_counts_steps() {
        let mut net = one_layer();
        let mut opt = Adam::new(0.001);
        assert_eq!(opt.steps(), 0);
        net.zero_grads();
        opt.step(&mut net);
        opt.step(&mut net);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "bound to another net")]
    fn adam_rejects_architecture_swap() {
        let mut a = one_layer();
        let mut opt = Adam::new(0.001);
        opt.step(&mut a);
        let mut b = Network::new();
        b.push(Dense::new(2, 2, 0));
        b.push(Dense::new(2, 2, 1));
        opt.step(&mut b);
    }
}
