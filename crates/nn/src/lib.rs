//! From-scratch deep-learning substrate for the DeepCSI classifier.
//!
//! The paper's DNN (Fig. 4) is a stack of `N_conv` convolutional layers
//! with SELU activations and max-pooling, a CBAM-style spatial-attention
//! block with a skip connection, and `N_dense` dense layers with
//! alpha-dropout, trained with cross-entropy. No Rust deep-learning crate
//! was available offline, so this crate implements the required subset
//! from first principles:
//!
//! * [`Tensor`] — a dense row-major f32 tensor (rank ≤ 3 used here).
//! * Layers — [`Conv2d`], [`MaxPool2d`], [`Dense`], [`Selu`],
//!   [`AlphaDropout`], [`SpatialAttention`], [`Flatten`] — each with an
//!   exact hand-derived backward pass (validated against finite
//!   differences in the test suite).
//! * [`Network`] — a sequential container with cloning support for
//!   data-parallel training.
//! * [`FrozenModel`] / [`InferCtx`] — the train/serve split:
//!   [`Network::freeze`] snapshots the weights into an immutable
//!   `Send + Sync` model (one `Arc` shared by every serving worker, no
//!   per-worker clone) while all scratch lives in a per-worker context;
//!   `infer`/`infer_batch` are bit-equal to `forward(train = false)`,
//!   and [`FrozenModel::infer_batch_par`] splits a batch's lane blocks
//!   across threads without ever changing an output.
//! * [`InferPool`] — the persistent serving runtime: parked lane
//!   threads own their contexts for the process lifetime, so the same
//!   bit-exact lane split runs with no spawn/join on the hot path.
//! * [`quant`] — the int8 serving backend: [`QuantSpec::calibrate`] +
//!   [`Network::freeze_int8`] re-freeze conv/dense onto integer
//!   dot-product kernels behind the same [`InferOp`] seam (top-1
//!   agreement ≥ 99%, same thread-split bit-exactness).
//! * [`softmax_cross_entropy`] — fused loss/gradient.
//! * [`Adam`] / [`Sgd`] — optimizers.
//! * [`Trainer`] — seeded mini-batch training with crossbeam-based
//!   multi-threaded gradient computation.
//! * [`ConfusionMatrix`] — the evaluation artifact every figure of the
//!   paper reports.
//!
//! # Example: learning XOR
//!
//! ```
//! use deepcsi_nn::{Dense, Network, Selu, Tensor, Trainer, TrainConfig};
//!
//! let mut net = Network::new();
//! net.push(Dense::new(2, 8, 1));
//! net.push(Selu::new());
//! net.push(Dense::new(8, 2, 2));
//! let xs: Vec<Tensor> = [[0.,0.],[0.,1.],[1.,0.],[1.,1.]]
//!     .iter().map(|p| Tensor::from_vec(vec![p[0], p[1]], vec![2])).collect();
//! let ys = vec![0usize, 1, 1, 0];
//! let mut trainer = Trainer::new(TrainConfig {
//!     epochs: 200, batch_size: 4, learning_rate: 0.02, threads: 1, seed: 7,
//!     ..TrainConfig::default()
//! });
//! trainer.fit(&mut net, &xs, &ys, &[], &[]);
//! let (acc, _) = deepcsi_nn::evaluate(&net, &xs, &ys);
//! assert!(acc > 0.9);
//! ```

// `deny` rather than `forbid`: the persistent inference pool
// (`pool.rs`) opts back in at file scope for its lane-block handoff —
// every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod fastmath;
mod frozen;
mod init;
mod layer;
pub mod layers;
mod loss;
mod metrics;
mod network;
mod optim;
mod pool;
pub mod quant;
mod tensor;
mod train;

pub use fastmath::poly_exp;
pub use frozen::{plan_split, FrozenModel, InferCtx, InferOp, ShapeMismatch, PAR_MIN_CHUNK};
pub use layer::Layer;
pub use layers::{
    AlphaDropout, Conv2d, Dense, Flatten, MaxPool2d, Selu, Sigmoid, SpatialAttention,
};
pub use loss::softmax_cross_entropy;
pub use metrics::ConfusionMatrix;
pub use network::Network;
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::InferPool;
pub use quant::{ActRange, Int8Freeze, QuantError, QuantLayerInfo, QuantSpec};
pub use tensor::Tensor;
pub use train::{evaluate, predict, TrainConfig, TrainReport, Trainer};
