//! Polynomial transcendentals shared by the training and inference paths.
//!
//! After the register-blocked conv/dense kernels, the scalar `exp` inside
//! SELU and sigmoid is the next hot spot of the batched CNN path:
//! `f32::exp` is an opaque libm call the compiler can neither inline nor
//! hoist. [`poly_exp`] replaces it with a Cody–Waite range reduction plus
//! a degree-6 polynomial — branch-light, inlineable, and within a few ULP
//! of `f32::exp` (the bound is pinned by a property test in
//! `tests/proptests.rs`).
//!
//! **Both** `Layer::forward` and the frozen [`crate::InferOp`]s call this
//! one function, so training-time activations and frozen serving
//! inference stay bit-identical — the invariant every
//! `infer_batch ≡ forward(train=false)` test in this crate relies on.

/// Inputs are saturated here: `e^-87.34` is the edge of the `f32`
/// normals (`≈ 1.18e-38`), anything lower is numerically zero already.
const EXP_LO: f32 = -87.336_55;
/// Upper saturation knee: `e^88 ≈ 1.65e38` is the largest result whose
/// `2^n` scale still fits a normal exponent field (`n ≤ 127`).
const EXP_HI: f32 = 88.0;

/// Polynomial `e^x`, within a few ULP of `f32::exp` on `[-87.33, 88.0]`
/// (and exactly `1.0` at `x = 0`).
///
/// Outside that range the input saturates: below, the result is pinned
/// at `e^-87.34 ≈ 1.2e-38` (numerically zero — the true value is
/// subnormal or zero); above, at `e^88 ≈ 1.65e38` (the true value
/// overflows to `+∞` soon after). `NaN` propagates. The function is
/// deliberately **branch-free** — clamp, round, fused polynomial,
/// exponent-field scale — so activation loops over it autovectorize.
#[inline(always)]
pub fn poly_exp(x: f32) -> f32 {
    // Saturating clamp instead of early returns keeps the whole function
    // if-convertible (NaN passes through `clamp` untouched).
    let x = x.clamp(EXP_LO, EXP_HI);
    // Range reduction: x = n·ln2 + r with |r| ≤ ln2/2, the ln2 split in
    // two constants (Cody–Waite) so n·ln2 subtracts exactly.
    let n = (x * std::f32::consts::LOG2_E).round();
    // 0.693359375 = 355/512 exactly (9 mantissa bits): n·LN2_HI is exact
    // for every |n| ≤ 128, which is the whole point of the split — spell
    // the value out in full rather than letting it look like a rounded
    // ln 2.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Degree-6 polynomial for e^r on [-ln2/2, ln2/2] (Cephes expf
    // coefficients), evaluated as 1 + r + r²·q(r) to keep the leading
    // terms exact.
    let mut q = 1.987_569_2e-4f32;
    q = q * r + 1.398_199_9e-3;
    q = q * r + 8.333_452e-3;
    q = q * r + 4.166_579_6e-2;
    q = q * r + 1.666_666_5e-1;
    q = q * r + 0.5;
    let p = q * (r * r) + r + 1.0;
    // Scale by 2^n via the exponent field; the clamp bounds n to
    // [-126, 127], so the biased exponent never overflows. A NaN input
    // reaches here as n = 0 (saturating cast), p = NaN.
    p * f32::from_bits(((n as i32 + 127) as u32) << 23)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_diff(a: f32, b: f32) -> u64 {
        assert!(a.is_finite() && b.is_finite() && a >= 0.0 && b >= 0.0);
        (i64::from(a.to_bits()) - i64::from(b.to_bits())).unsigned_abs()
    }

    #[test]
    fn exact_at_zero() {
        assert_eq!(poly_exp(0.0), 1.0);
        assert_eq!(poly_exp(-0.0), 1.0);
    }

    #[test]
    fn saturates_at_the_knees() {
        // Below: pinned at the edge of the normals — numerically zero.
        assert!(poly_exp(-200.0) <= 1.2e-38);
        assert!(poly_exp(f32::NEG_INFINITY) <= 1.2e-38);
        // Above: pinned at e^88 ≈ 1.65e38 — numerically "huge", finite.
        assert!(poly_exp(200.0) >= 1.6e38);
        assert!(poly_exp(f32::INFINITY) >= 1.6e38);
        assert!(poly_exp(f32::NAN).is_nan());
        // Saturation is monotone with the in-range values.
        assert!(poly_exp(-200.0) <= poly_exp(-87.0));
        assert!(poly_exp(200.0) >= poly_exp(87.9));
    }

    #[test]
    fn dense_sweep_stays_within_ulp_budget() {
        // 400k evenly spaced points over the whole normal-result range.
        let (lo, hi) = (-87.0f32, 88.0f32);
        let n = 400_000;
        let mut worst = 0u64;
        for i in 0..=n {
            let x = lo + (hi - lo) * i as f32 / n as f32;
            let d = ulp_diff(poly_exp(x), x.exp());
            worst = worst.max(d);
        }
        assert!(worst <= 8, "max ULP error {worst} exceeds budget");
    }
}
