//! Sequential network container.

use crate::frozen::FrozenModel;
use crate::layer::{Layer, ParamView};
use crate::quant::{QuantError, QuantLayerInfo, QuantSpec};
use crate::tensor::Tensor;

/// A sequential stack of layers.
///
/// Cloning a `Network` deep-copies every layer (weights, optimizer-visible
/// gradients and RNG state) — this is what the data-parallel trainer uses
/// to hand each worker thread its own replica.
#[derive(Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            layers: self.layers.clone(),
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Network[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{}", l.name())?;
        }
        write!(f, "]")
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the forward pass. `train` enables stochastic layers and caches
    /// the activations needed by [`Network::backward`].
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in self.layers.iter_mut() {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Snapshots the network into an immutable, `Send + Sync`
    /// [`FrozenModel`] for serving.
    ///
    /// The frozen model's outputs are bit-equal to
    /// [`Network::forward`]`(x, false)`; weights are copied once, so
    /// later training steps on this network do not affect the snapshot.
    /// Share it as `Arc<FrozenModel>` across worker threads, each with
    /// its own [`crate::InferCtx`].
    pub fn freeze(&self) -> FrozenModel {
        FrozenModel::from_ops(self.layers.iter().map(|l| l.freeze()).collect())
    }

    /// Snapshots the network into a post-training-quantized **int8**
    /// [`FrozenModel`]: conv/dense run integer kernels
    /// (`i8 × i8 → i32`, requantized at layer exit), activations and the
    /// attention block stay f32 behind dequantize/quantize hops, and the
    /// whole chain serves behind the same [`crate::InferOp`] seam as the
    /// f32 snapshot — including the bit-exact thread-parallel lane
    /// split.
    ///
    /// `spec` comes from [`QuantSpec::calibrate`] run on this network's
    /// f32 [`Network::freeze`] snapshot with a representative sample
    /// batch. Outputs are *approximately* equal to `forward(x, false)` —
    /// quantization trades a bounded per-layer rounding error (see
    /// `crate::quant`) for integer arithmetic; it is the one deliberate
    /// exception to the frozen path's bit-equality contract, which is
    /// why it lives behind an explicit opt-in instead of a flag on
    /// [`Network::freeze`].
    ///
    /// # Errors
    ///
    /// [`QuantError::BoundaryCount`] when `spec` was calibrated against
    /// a different architecture, [`QuantError::Shape`] when the
    /// assembled chain fails shape validation against the calibration
    /// input shape.
    pub fn freeze_int8(&self, spec: &QuantSpec) -> Result<FrozenModel, QuantError> {
        Ok(self.freeze_int8_report(spec)?.0)
    }

    /// [`Network::freeze_int8`] plus per-layer quantization metadata
    /// (weight scales and round-trip error bounds) for benchmarking and
    /// diagnostics.
    ///
    /// # Errors
    ///
    /// Same as [`Network::freeze_int8`].
    pub fn freeze_int8_report(
        &self,
        spec: &QuantSpec,
    ) -> Result<(FrozenModel, Vec<QuantLayerInfo>), QuantError> {
        crate::quant::assemble(&self.layers, spec)
    }

    /// Immutable single-sample inference, bit-equal to
    /// `forward(x, false)`.
    ///
    /// Convenience wrapper that freezes the network on every call; a
    /// serving loop should call [`Network::freeze`] once and reuse the
    /// [`FrozenModel`] (plus a per-worker [`crate::InferCtx`]) instead.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.forward_batch(std::slice::from_ref(x))
            .pop()
            .expect("one output per input")
    }

    /// Micro-batched immutable inference: one pass of every weight matrix
    /// serves the whole batch.
    ///
    /// Outputs are element-wise bit-equal to calling [`Network::forward`]
    /// with `train = false` on each sample; any batch size works (no
    /// padding requirement). Convenience wrapper around
    /// [`Network::freeze`] + [`FrozenModel::infer_batch`] that snapshots
    /// the weights on **every call** — hot paths (the serving engine,
    /// [`crate::evaluate`]) freeze once and reuse the model.
    pub fn forward_batch(&self, xs: &[Tensor]) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        let frozen = self.freeze();
        let mut ctx = frozen.ctx();
        frozen.infer_batch(xs, &mut ctx)
    }

    /// Back-propagates an output gradient, accumulating parameter
    /// gradients in every layer.
    pub fn backward(&mut self, grad: &Tensor) {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
    }

    /// Clears all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for layer in self.layers.iter_mut() {
            layer.zero_grads();
        }
    }

    /// Mutable parameter views across all layers, in a stable order.
    pub fn params(&mut self) -> Vec<ParamView<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Total number of trainable scalars (the paper quotes 489,301 for
    /// its architecture; ours counts 489,305 — a bias-bookkeeping detail).
    pub fn num_params(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.num_params()).sum()
    }

    /// Adds `other`'s accumulated gradients into this network's
    /// accumulators (gradient reduction across data-parallel workers).
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn add_grads_from(&mut self, other: &mut Network) {
        let mut mine = self.params();
        let theirs = other.params();
        assert_eq!(mine.len(), theirs.len(), "architecture mismatch");
        for (m, t) in mine.iter_mut().zip(theirs.iter()) {
            assert_eq!(m.g.len(), t.g.len(), "parameter shape mismatch");
            for (gm, gt) in m.g.iter_mut().zip(t.g.iter()) {
                *gm += gt;
            }
        }
    }

    /// Scales all accumulated gradients (e.g. by `1/batch_size`).
    pub fn scale_grads(&mut self, s: f32) {
        for p in self.params() {
            for g in p.g.iter_mut() {
                *g *= s;
            }
        }
    }

    /// Snapshots all weights (for serialisation; architecture is rebuilt
    /// from configuration).
    pub fn save_weights(&mut self) -> Vec<Vec<f32>> {
        self.params().iter().map(|p| p.w.to_vec()).collect()
    }

    /// Restores weights saved by [`Network::save_weights`].
    ///
    /// # Panics
    ///
    /// Panics if the weight shapes do not match this architecture.
    pub fn load_weights(&mut self, weights: &[Vec<f32>]) {
        let mut params = self.params();
        assert_eq!(params.len(), weights.len(), "weight tensor count mismatch");
        for (p, w) in params.iter_mut().zip(weights.iter()) {
            assert_eq!(p.w.len(), w.len(), "weight shape mismatch");
            p.w.copy_from_slice(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Selu};
    use crate::loss::softmax_cross_entropy;

    fn tiny_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Selu::new());
        net.push(Dense::new(5, 2, 2));
        net
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net();
        let y = net.forward(&Tensor::zeros(vec![3]), false);
        assert_eq!(y.shape(), &[2]);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = tiny_net();
        let mut b = a.clone();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![3]);
        // Same weights → same outputs.
        assert_eq!(
            a.forward(&x, false).as_slice(),
            b.forward(&x, false).as_slice()
        );
        // Mutating the clone's weights leaves the original untouched.
        b.params()[0].w[0] += 1.0;
        assert_ne!(
            a.forward(&x, false).as_slice(),
            b.forward(&x, false).as_slice()
        );
    }

    #[test]
    fn grad_reduction_sums() {
        let mut a = tiny_net();
        let mut b = a.clone();
        let x = Tensor::from_vec(vec![1.0, -1.0, 0.5], vec![3]);
        for net in [&mut a, &mut b] {
            net.zero_grads();
            let y = net.forward(&x, true);
            let (_, g) = softmax_cross_entropy(&y, 0);
            net.backward(&g);
        }
        let b_g0 = b.params()[0].g[0];
        let a_g0_before = a.params()[0].g[0];
        a.add_grads_from(&mut b);
        let a_g0_after = a.params()[0].g[0];
        assert!((a_g0_after - (a_g0_before + b_g0)).abs() < 1e-7);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut a = tiny_net();
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3], vec![3]);
        let before = a.forward(&x, false);
        let weights = a.save_weights();
        let mut b = tiny_net();
        // b has different init (different seeds) until loaded.
        b.load_weights(&weights);
        let after = b.forward(&x, false);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn scale_grads_scales() {
        let mut net = tiny_net();
        net.zero_grads();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![3]);
        let y = net.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, 1);
        net.backward(&g);
        let before = net.params()[0].g[0];
        net.scale_grads(0.5);
        assert!((net.params()[0].g[0] - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn debug_shows_layer_chain() {
        let net = tiny_net();
        let s = format!("{net:?}");
        assert!(s.contains("dense"));
        assert!(s.contains("selu"));
    }
}
