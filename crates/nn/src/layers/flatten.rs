//! Flattening between the convolutional and dense stages.

use crate::frozen::{InferCtx, InferOp};
use crate::layer::{Layer, ParamView};
use crate::quant::Int8Freeze;
use crate::tensor::Tensor;

/// Flattens any input to rank 1, restoring the shape on backward.
#[derive(Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Frozen flatten: in the batch-innermost plane layout a reshape never
/// moves data, so this is a pure shape relabel — zero copies.
struct FrozenFlatten;

impl InferOp for FrozenFlatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        let elems = ctx.elems();
        ctx.set_shape(&[elems]);
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        Ok(vec![in_shape.iter().product()])
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.in_shape = x.shape().to_vec();
        x.clone().reshape(vec![x.len()])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward without forward");
        grad.clone().reshape(self.in_shape.clone())
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(FrozenFlatten)
    }

    fn freeze_int8(&self, _in_scale: f32, _out_scale: f32) -> Option<Int8Freeze> {
        // A reshape is a pure relabel in either domain — the int8 plane
        // and its scale pass through untouched.
        Some(Int8Freeze::ScalePreserving(Box::new(FrozenFlatten)))
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![2, 2, 3]);
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 2, 3]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn frozen_flatten_is_a_relabel() {
        let f = Flatten::new();
        let model = crate::FrozenModel::from_ops(vec![f.freeze()]);
        let xs = vec![Tensor::from_vec((0..6).map(|v| v as f32).collect(), vec![2, 1, 3]); 2];
        let mut ctx = model.ctx();
        let got = model.infer_batch(&xs, &mut ctx);
        assert_eq!(got[0].shape(), &[6]);
        assert_eq!(got[0].as_slice(), xs[0].as_slice());
    }
}
