//! Max pooling.

use crate::frozen::{InferCtx, InferOp};
use crate::layer::{Layer, ParamView};
use crate::quant::ops::{pool_out_shape, Int8MaxPool};
use crate::quant::Int8Freeze;
use crate::tensor::Tensor;

/// Max pooling with stride equal to the kernel (non-overlapping windows)
/// and floor truncation of ragged edges — matching the framework defaults
/// the paper's `(1, 2)` pools rely on (234 → 117 → 58 → 29 → 14 → 7).
#[derive(Clone)]
pub struct MaxPool2d {
    kh: usize,
    kw: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pool with the given kernel.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized kernel.
    pub fn new((kh, kw): (usize, usize)) -> Self {
        assert!(kh > 0 && kw > 0, "zero-sized pooling kernel");
        MaxPool2d {
            kh,
            kw,
            argmax: Vec::new(),
            in_shape: Vec::new(),
        }
    }
}

/// The frozen pool: kernel dims only (no parameters, no cache).
struct FrozenMaxPool2d {
    kh: usize,
    kw: usize,
}

impl InferOp for FrozenMaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        let [c, h, w]: [usize; 3] = ctx.shape().try_into().expect("pool input must be rank 3");
        let oh = h / self.kh;
        let ow = w / self.kw;
        assert!(oh > 0 && ow > 0, "input smaller than pooling kernel");
        let (kh, kw) = (self.kh, self.kw);
        // Every output lane row is seeded by copy before the max scan —
        // no zero-fill needed.
        ctx.produce(&[c, oh, ow], false, |xs, os, _, b| {
            for ci in 0..c {
                for hi in 0..oh {
                    for wi in 0..ow {
                        let first = (ci * h + hi * kh) * w + wi * kw;
                        let obase = ((ci * oh + hi) * ow + wi) * b;
                        os[obase..obase + b].copy_from_slice(&xs[first * b..(first + 1) * b]);
                        for dh in 0..kh {
                            for dw in 0..kw {
                                let idx = (ci * h + hi * kh + dh) * w + wi * kw + dw;
                                let ibase = idx * b;
                                for s in 0..b {
                                    // Strict `>` keeps the first maximum,
                                    // like `forward`.
                                    if xs[ibase + s] > os[obase + s] {
                                        os[obase + s] = xs[ibase + s];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        pool_out_shape(in_shape, self.kh, self.kw)
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [c, h, w]: [usize; 3] = x.shape().try_into().expect("pool input must be rank 3");
        let oh = h / self.kh;
        let ow = w / self.kw;
        assert!(oh > 0 && ow > 0, "input smaller than pooling kernel");
        let mut out = Tensor::zeros(vec![c, oh, ow]);
        self.argmax = vec![0; c * oh * ow];
        self.in_shape = x.shape().to_vec();
        let xs = x.as_slice();
        let os = out.as_mut_slice();
        for ci in 0..c {
            for hi in 0..oh {
                for wi in 0..ow {
                    let mut best_idx = (ci * h + hi * self.kh) * w + wi * self.kw;
                    let mut best = xs[best_idx];
                    for dh in 0..self.kh {
                        for dw in 0..self.kw {
                            let idx = (ci * h + hi * self.kh + dh) * w + wi * self.kw + dw;
                            if xs[idx] > best {
                                best = xs[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = (ci * oh + hi) * ow + wi;
                    os[o] = best;
                    self.argmax[o] = best_idx;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward without forward");
        let mut gx = Tensor::zeros(self.in_shape.clone());
        let gxs = gx.as_mut_slice();
        for (o, &src) in self.argmax.iter().enumerate() {
            gxs[src] += grad.as_slice()[o];
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(FrozenMaxPool2d {
            kh: self.kh,
            kw: self.kw,
        })
    }

    fn freeze_int8(&self, _in_scale: f32, _out_scale: f32) -> Option<Int8Freeze> {
        // Max is monotone, so pooling the int8 plane directly is exact:
        // the scale passes through untouched and no quantization error
        // is introduced — an int8 conv → pool → conv block never leaves
        // the integer domain.
        Some(Int8Freeze::ScalePreserving(Box::new(Int8MaxPool {
            kh: self.kh,
            kw: self.kw,
        })))
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maximum_with_floor_truncation() {
        let mut pool = MaxPool2d::new((1, 2));
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0, 9.0], vec![1, 1, 5]);
        let y = pool.forward(&x, false);
        // Width 5 → 2 (last element dropped).
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.as_slice(), &[5.0, 3.0]);
    }

    #[test]
    fn paper_width_sequence() {
        // 234 pooled by (1,2) five times: 117, 58, 29, 14, 7.
        let mut w = 234usize;
        let mut seq = Vec::new();
        for _ in 0..5 {
            let mut pool = MaxPool2d::new((1, 2));
            let x = Tensor::zeros(vec![1, 1, w]);
            w = pool.forward(&x, false).shape()[2];
            seq.push(w);
        }
        assert_eq!(seq, vec![117, 58, 29, 14, 7]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new((1, 2));
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], vec![1, 1, 4]);
        let y = pool.forward(&x, false);
        let g = Tensor::from_vec(vec![10.0, 20.0], y.shape().to_vec());
        let gx = pool.backward(&g);
        assert_eq!(gx.as_slice(), &[0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn multichannel_pooling() {
        let mut pool = MaxPool2d::new((1, 2));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], vec![2, 1, 4]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[2.0, 4.0, 8.0, 6.0]);
    }

    #[test]
    fn frozen_matches_forward() {
        let mut pool = MaxPool2d::new((1, 3));
        let model = crate::FrozenModel::from_ops(vec![pool.freeze()]);
        let xs: Vec<Tensor> = (0..5)
            .map(|s| {
                Tensor::from_vec(
                    (0..2 * 7)
                        .map(|e| ((e * 3 + s * 5) % 13) as f32 - 6.0)
                        .collect(),
                    vec![2, 1, 7],
                )
            })
            .collect();
        let mut ctx = model.ctx();
        let got = model.infer_batch(&xs, &mut ctx);
        for (x, g) in xs.iter().zip(&got) {
            assert_eq!(pool.forward(x, false).as_slice(), g.as_slice());
        }
    }

    #[test]
    fn no_trainable_params() {
        let mut pool = MaxPool2d::new((1, 2));
        assert_eq!(pool.num_params(), 0);
    }
}
