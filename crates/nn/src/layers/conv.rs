//! 2-D convolution with "same" zero padding.

use crate::frozen::{InferCtx, InferOp};
use crate::init::lecun_normal;
use crate::layer::{Layer, ParamView};
use crate::quant::ops::{conv_out_shape, Int8Conv2d};
use crate::quant::{quantize_layer, Int8Freeze};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A stride-1 2-D convolution with "same" zero padding.
///
/// Input/output feature maps are `(channels, height, width)`. The paper's
/// classifier uses kernels of shape `(1, 7)`, `(1, 5)` and `(1, 3)` — the
/// spectral dimension runs along `width` — but the implementation is
/// general.
#[derive(Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    weight: Vec<f32>, // [out][in][kh][kw]
    bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    cache_x: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with LeCun-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel dims are even ("same"
    /// padding requires odd kernels).
    pub fn new(in_ch: usize, out_ch: usize, (kh, kw): (usize, usize), seed: u64) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && kh > 0 && kw > 0, "zero dims");
        assert!(kh % 2 == 1 && kw % 2 == 1, "same padding needs odd kernels");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC04F);
        let fan_in = in_ch * kh * kw;
        let n = out_ch * fan_in;
        Conv2d {
            in_ch,
            out_ch,
            kh,
            kw,
            weight: lecun_normal(&mut rng, fan_in, n),
            bias: vec![0.0; out_ch],
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_ch],
            cache_x: None,
        }
    }

    #[inline]
    fn widx(&self, o: usize, i: usize, dh: usize, dw: usize) -> usize {
        ((o * self.in_ch + i) * self.kh + dh) * self.kw + dw
    }

    /// Snapshots the weights into the immutable batched-inference op
    /// (also embedded by the frozen attention block).
    pub(crate) fn frozen(&self) -> FrozenConv2d {
        FrozenConv2d {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            kh: self.kh,
            kw: self.kw,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
        }
    }
}

/// SIMD lane-block width of the batched conv kernel (matches the dense
/// kernel; one full AVX-512 vector of `f32`).
const LANES: usize = 16;

/// The frozen convolution: weights only, batched kernels over the
/// interleaved planes of an [`InferCtx`].
pub(crate) struct FrozenConv2d {
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    weight: Vec<f32>, // [out][in][kh][kw]
    bias: Vec<f32>,
}

impl FrozenConv2d {
    /// Output channel count (the frozen attention block sizes its
    /// logits plane from this).
    pub(crate) fn out_ch(&self) -> usize {
        self.out_ch
    }

    #[inline]
    fn widx(&self, o: usize, i: usize, dh: usize, dw: usize) -> usize {
        ((o * self.in_ch + i) * self.kh + dh) * self.kw + dw
    }

    /// Register-blocked batched kernel for one full `LANES`-wide lane
    /// block: `OB` output channels share every input-lane load, and the
    /// accumulators stay in vector registers across the whole
    /// receptive-field scan. Term order per output element matches
    /// `Conv2d::forward` — `(i, dh, dw)` ascending with out-of-bounds
    /// taps skipped, bias last — so results stay bit-equal.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn conv_lanes<const OB: usize>(
        &self,
        xs: &[f32],
        os: &mut [f32],
        (c, h, w): (usize, usize, usize),
        b: usize,
        o0: usize,
        s0: usize,
    ) {
        let (ph, pw) = (self.kh / 2, self.kw / 2);
        for oh in 0..h {
            // Valid kernel rows: ih = oh + dh − ph ∈ [0, h).
            let dh_lo = ph.saturating_sub(oh);
            let dh_hi = (h + ph - oh).min(self.kh);
            for ow in 0..w {
                // Valid kernel cols: iw = ow + dw − pw ∈ [0, w).
                let dw_lo = pw.saturating_sub(ow);
                let dw_hi = (w + pw - ow).min(self.kw);
                let mut acc = [[0.0f32; LANES]; OB];
                for i in 0..c {
                    for dh in dh_lo..dh_hi {
                        let ih = oh + dh - ph;
                        for dw in dw_lo..dw_hi {
                            let iw = ow + dw - pw;
                            let base = ((i * h + ih) * w + iw) * b + s0;
                            let xrow: &[f32; LANES] =
                                xs[base..base + LANES].try_into().expect("full lane block");
                            for (j, a) in acc.iter_mut().enumerate() {
                                let wv = self.weight[self.widx(o0 + j, i, dh, dw)];
                                for (av, &xv) in a.iter_mut().zip(xrow) {
                                    *av += wv * xv;
                                }
                            }
                        }
                    }
                }
                for (j, a) in acc.iter().enumerate() {
                    let bias = self.bias[o0 + j];
                    let ob = (((o0 + j) * h + oh) * w + ow) * b + s0;
                    for (ov, &av) in os[ob..ob + LANES].iter_mut().zip(a) {
                        *ov = av + bias;
                    }
                }
            }
        }
    }

    /// Runs the batched convolution from `xs` (shape `(c, h, w)`, `b`
    /// interleaved lanes) into the zero-filled `os`.
    pub(crate) fn run(
        &self,
        xs: &[f32],
        os: &mut [f32],
        (c, h, w): (usize, usize, usize),
        b: usize,
    ) {
        assert_eq!(c, self.in_ch, "input channel mismatch");
        let mut s0 = 0;
        while s0 < b {
            let sl = LANES.min(b - s0);
            if sl == LANES {
                let mut o0 = 0;
                while o0 + 4 <= self.out_ch {
                    self.conv_lanes::<4>(xs, os, (c, h, w), b, o0, s0);
                    o0 += 4;
                }
                while o0 < self.out_ch {
                    self.conv_lanes::<1>(xs, os, (c, h, w), b, o0, s0);
                    o0 += 1;
                }
            } else {
                // Ragged trailing lanes (batch not a multiple of LANES):
                // same term order, dynamic lane width.
                let (ph, pw) = (self.kh / 2, self.kw / 2);
                for o in 0..self.out_ch {
                    let out_base = o * h * w;
                    for i in 0..c {
                        let in_base = i * h * w;
                        for dh in 0..self.kh {
                            for dw in 0..self.kw {
                                let wv = self.weight[self.widx(o, i, dh, dw)];
                                for oh in 0..h {
                                    let ih = oh + dh;
                                    if ih < ph || ih - ph >= h {
                                        continue;
                                    }
                                    let ih = ih - ph;
                                    let orow = out_base + oh * w;
                                    let irow = in_base + ih * w;
                                    let ow_lo = pw.saturating_sub(dw);
                                    let ow_hi = (w + pw).saturating_sub(dw).min(w);
                                    for ow in ow_lo..ow_hi {
                                        let ob = (orow + ow) * b + s0;
                                        let ib = (irow + ow + dw - pw) * b + s0;
                                        for s in 0..sl {
                                            os[ob + s] += wv * xs[ib + s];
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let bias = self.bias[o];
                    for hw in 0..h * w {
                        let ob = (out_base + hw) * b + s0;
                        for s in 0..sl {
                            os[ob + s] += bias;
                        }
                    }
                }
            }
            s0 += sl;
        }
    }
}

impl InferOp for FrozenConv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        let [c, h, w]: [usize; 3] = ctx.shape().try_into().expect("conv input must be rank 3");
        // The accumulating ragged path needs a zero-filled output plane.
        ctx.produce(&[self.out_ch, h, w], true, |xs, os, _, b| {
            self.run(xs, os, (c, h, w), b);
        });
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        conv_out_shape(self.in_ch, self.out_ch, in_shape)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let [c, h, w]: [usize; 3] = x.shape().try_into().expect("conv input must be rank 3");
        assert_eq!(c, self.in_ch, "input channel mismatch");
        let (ph, pw) = (self.kh / 2, self.kw / 2);
        let mut out = Tensor::zeros(vec![self.out_ch, h, w]);
        let xs = x.as_slice();
        {
            let os = out.as_mut_slice();
            for o in 0..self.out_ch {
                let out_base = o * h * w;
                for i in 0..c {
                    let in_base = i * h * w;
                    for dh in 0..self.kh {
                        for dw in 0..self.kw {
                            let wv = self.weight[self.widx(o, i, dh, dw)];
                            // Output row oh reads input row oh+dh−ph.
                            for oh in 0..h {
                                let ih = oh + dh;
                                if ih < ph || ih - ph >= h {
                                    continue;
                                }
                                let ih = ih - ph;
                                let orow = out_base + oh * w;
                                let irow = in_base + ih * w;
                                // Valid ow range for iw = ow+dw−pw ∈ [0,w).
                                let ow_lo = pw.saturating_sub(dw);
                                let ow_hi = (w + pw).saturating_sub(dw).min(w);
                                for ow in ow_lo..ow_hi {
                                    os[orow + ow] += wv * xs[irow + ow + dw - pw];
                                }
                            }
                        }
                    }
                }
                for oh in 0..h {
                    for ow in 0..w {
                        os[out_base + oh * w + ow] += self.bias[o];
                    }
                }
            }
        }
        self.cache_x = Some(x.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without forward");
        let [c, h, w]: [usize; 3] = x.shape().try_into().expect("rank 3");
        let (ph, pw) = (self.kh / 2, self.kw / 2);
        let gs = grad.as_slice();
        let xs = x.as_slice();
        let mut gx = Tensor::zeros(vec![c, h, w]);
        let gxs = gx.as_mut_slice();

        for o in 0..self.out_ch {
            let out_base = o * h * w;
            // Bias gradient: sum of output grads.
            let mut gb = 0.0f32;
            for v in &gs[out_base..out_base + h * w] {
                gb += v;
            }
            self.grad_b[o] += gb;

            for i in 0..c {
                let in_base = i * h * w;
                for dh in 0..self.kh {
                    for dw in 0..self.kw {
                        let wi = self.widx(o, i, dh, dw);
                        let wv = self.weight[wi];
                        let mut gw = 0.0f32;
                        for oh in 0..h {
                            let ih = oh + dh;
                            if ih < ph || ih - ph >= h {
                                continue;
                            }
                            let ih = ih - ph;
                            let orow = out_base + oh * w;
                            let irow = in_base + ih * w;
                            let ow_lo = pw.saturating_sub(dw);
                            let ow_hi = (w + pw).saturating_sub(dw).min(w);
                            for ow in ow_lo..ow_hi {
                                let g = gs[orow + ow];
                                gw += g * xs[irow + ow + dw - pw];
                                gxs[irow + ow + dw - pw] += g * wv;
                            }
                        }
                        self.grad_w[wi] += gw;
                    }
                }
            }
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(self.frozen())
    }

    fn freeze_int8(&self, in_scale: f32, out_scale: f32) -> Option<Int8Freeze> {
        // Widths outside the monomorphized im2col dispatch stay on the
        // f32 op: the pipeline still assembles, this layer just rides
        // between dequantize/quantize hops instead of panicking at
        // first inference inside a serving worker.
        if !Int8Conv2d::supports_width(self.kw) {
            return None;
        }
        let parts = quantize_layer(
            "conv2d",
            &self.weight,
            &self.bias,
            self.out_ch,
            in_scale,
            out_scale,
        );
        Some(Int8Freeze::Requantized {
            op: Box::new(Int8Conv2d {
                in_ch: self.in_ch,
                out_ch: self.out_ch,
                kh: self.kh,
                kw: self.kw,
                weight: parts.weight,
                m: parts.m,
                bq: parts.bq,
                out_scale,
            }),
            info: parts.info,
        })
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        vec![
            ParamView {
                w: &mut self.weight,
                g: &mut self.grad_w,
            },
            ParamView {
                w: &mut self.bias,
                g: &mut self.grad_b,
            },
        ]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_is_same_padded() {
        let mut conv = Conv2d::new(2, 4, (1, 7), 1);
        let x = Tensor::zeros(vec![2, 1, 20]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[4, 1, 20]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, (1, 3), 1);
        // Kernel [0, 1, 0], bias 0 → identity.
        conv.weight.copy_from_slice(&[0.0, 1.0, 0.0]);
        conv.bias[0] = 0.0;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![1, 1, 4]);
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_convolution_value() {
        let mut conv = Conv2d::new(1, 1, (1, 3), 1);
        conv.weight.copy_from_slice(&[1.0, 1.0, 1.0]);
        conv.bias[0] = 0.5;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![1, 1, 3]);
        let y = conv.forward(&x, false);
        // Same padding: [0+1+2, 1+2+3, 2+3+0] + 0.5.
        assert_eq!(y.as_slice(), &[3.5, 6.5, 5.5]);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut conv = Conv2d::new(128, 128, (1, 7), 0);
        assert_eq!(conv.num_params(), 128 * 128 * 7 + 128);
    }

    #[test]
    fn frozen_matches_forward_across_batch_sizes() {
        let mut conv = Conv2d::new(2, 3, (1, 5), 11);
        let model = crate::FrozenModel::from_ops(vec![conv.freeze()]);
        for b in [1usize, 7, 16, 19, 33] {
            let xs: Vec<Tensor> = (0..b)
                .map(|s| {
                    Tensor::from_vec(
                        (0..2 * 6)
                            .map(|e| ((e * 5 + s * 3) % 9) as f32 * 0.25 - 1.0)
                            .collect(),
                        vec![2, 1, 6],
                    )
                })
                .collect();
            let mut ctx = model.ctx();
            let got = model.infer_batch(&xs, &mut ctx);
            for (x, g) in xs.iter().zip(&got) {
                assert_eq!(conv.forward(x, false).as_slice(), g.as_slice(), "b={b}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // wi indexes weight and grad in lockstep
    fn gradient_check_small() {
        // Centered finite differences on every parameter and input of a
        // tiny conv.
        let mut conv = Conv2d::new(2, 2, (1, 3), 3);
        let x = Tensor::from_vec(
            (0..12).map(|i| (i as f32 * 0.3).sin()).collect(),
            vec![2, 1, 6],
        );
        // Loss = sum of outputs → upstream grad of ones.
        let y = conv.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape().to_vec());
        conv.zero_grads();
        let _ = conv.forward(&x, true);
        let gx = conv.backward(&ones);

        let eps = 1e-3f32;
        // Input gradient check.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp: f32 = conv.forward(&xp, false).as_slice().iter().sum();
            let fm: f32 = conv.forward(&xm, false).as_slice().iter().sum();
            let want = (fp - fm) / (2.0 * eps);
            let got = gx.as_slice()[i];
            assert!(
                (want - got).abs() < 1e-2,
                "input grad {i}: fd {want} vs bp {got}"
            );
        }
        // Weight gradient check.
        let gw = conv.grad_w.clone();
        for wi in 0..conv.weight.len() {
            let orig = conv.weight[wi];
            conv.weight[wi] = orig + eps;
            let fp: f32 = conv.forward(&x, false).as_slice().iter().sum();
            conv.weight[wi] = orig - eps;
            let fm: f32 = conv.forward(&x, false).as_slice().iter().sum();
            conv.weight[wi] = orig;
            let want = (fp - fm) / (2.0 * eps);
            assert!(
                (want - gw[wi]).abs() < 1e-2,
                "weight grad {wi}: fd {want} vs bp {}",
                gw[wi]
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd kernels")]
    fn even_kernel_panics() {
        let _ = Conv2d::new(1, 1, (1, 2), 0);
    }
}
