//! Alpha dropout for self-normalising networks.

use crate::frozen::{InferCtx, InferOp};
use crate::layer::{Layer, ParamView};
use crate::layers::activation::{SELU_ALPHA, SELU_LAMBDA};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frozen alpha dropout: the identity — not even a copy. The frozen op
/// carries no RNG, which is exactly why a [`crate::FrozenModel`] can be
/// `Sync` while the training layer cannot.
struct FrozenAlphaDropout;

impl InferOp for FrozenAlphaDropout {
    fn name(&self) -> &'static str {
        "alpha_dropout"
    }

    fn apply(&self, _ctx: &mut InferCtx) {}
}

/// Alpha dropout (Klambauer et al. §3): instead of zeroing units it sets
/// them to the SELU saturation value `α' = −λα` and applies an affine
/// correction so the layer keeps zero mean and unit variance — which is
/// what lets SELU networks use dropout at all. Identity at inference.
#[derive(Clone)]
pub struct AlphaDropout {
    rate: f32,
    rng: StdRng,
    mask: Vec<bool>,
}

impl AlphaDropout {
    /// Creates a dropout layer dropping each unit with probability
    /// `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate < 1`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        AlphaDropout {
            rate,
            rng: StdRng::seed_from_u64(seed ^ 0xD409),
            mask: Vec::new(),
        }
    }

    fn affine(&self) -> (f32, f32, f32) {
        let alpha_p = -SELU_LAMBDA * SELU_ALPHA;
        let q = 1.0 - self.rate; // keep probability
        let a = (q + alpha_p * alpha_p * q * self.rate).powf(-0.5);
        let b = -a * alpha_p * self.rate;
        (alpha_p, a, b)
    }
}

impl Layer for AlphaDropout {
    fn name(&self) -> &'static str {
        "alpha_dropout"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.rate == 0.0 {
            self.mask.clear();
            return x.clone();
        }
        let (alpha_p, a, b) = self.affine();
        self.mask = (0..x.len())
            .map(|_| self.rng.gen::<f32>() >= self.rate)
            .collect();
        let mut out = x.clone();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(&self.mask) {
            let pre = if keep { *v } else { alpha_p };
            *v = a * pre + b;
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        if self.mask.is_empty() {
            return grad.clone();
        }
        let (_, a, _) = self.affine();
        let mut gx = grad.clone();
        for (g, &keep) in gx.as_mut_slice().iter_mut().zip(&self.mask) {
            *g = if keep { *g * a } else { 0.0 };
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        // Identity at inference, like `forward` with `train = false`.
        Box::new(FrozenAlphaDropout)
    }

    fn freeze_int8(&self, _in_scale: f32, _out_scale: f32) -> Option<crate::quant::Int8Freeze> {
        // The frozen identity is domain-agnostic: an int8 chain passes
        // straight through without a float round trip.
        Some(crate::quant::Int8Freeze::ScalePreserving(Box::new(
            FrozenAlphaDropout,
        )))
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_inference() {
        let mut d = AlphaDropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], vec![3]);
        let y = d.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
        // Backward is identity too.
        let g = d.backward(&x);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn training_perturbs_and_masks() {
        let mut d = AlphaDropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0; 64], vec![64]);
        let y = d.forward(&x, true);
        // Some units get the saturation treatment.
        let distinct: std::collections::HashSet<u32> =
            y.as_slice().iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() >= 2, "no units were dropped");
    }

    #[test]
    fn preserves_moments_approximately() {
        // On standard-normal input, alpha dropout keeps mean ≈ 0, var ≈ 1.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
            })
            .collect();
        let mut d = AlphaDropout::new(0.2, 7);
        let y = d.forward(&Tensor::from_vec(data, vec![n]), true);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / n as f32;
        let var: f32 = y
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn backward_zeroes_dropped_units() {
        let mut d = AlphaDropout::new(0.5, 5);
        let x = Tensor::from_vec(vec![1.0; 32], vec![32]);
        let _ = d.forward(&x, true);
        let g = d.backward(&Tensor::from_vec(vec![1.0; 32], vec![32]));
        let zeros = g.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0, "no gradient was masked");
        assert!(zeros < 32, "all gradient was masked");
    }

    #[test]
    fn rate_zero_is_identity_even_in_training() {
        let mut d = AlphaDropout::new(0.0, 1);
        let x = Tensor::from_vec(vec![0.5, -0.5], vec![2]);
        assert_eq!(d.forward(&x, true).as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn rate_one_panics() {
        let _ = AlphaDropout::new(1.0, 0);
    }
}
