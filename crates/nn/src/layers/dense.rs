//! Fully-connected layer.

use crate::frozen::{InferCtx, InferOp};
use crate::init::lecun_normal;
use crate::layer::{Layer, ParamView};
use crate::quant::ops::{dense_out_shape, Int8Dense};
use crate::quant::{quantize_layer, Int8Freeze};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully-connected layer `y = W x + b` over rank-1 inputs.
#[derive(Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weight: Vec<f32>, // [out][in]
    bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with LeCun-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "zero dims");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDE45E);
        Dense {
            in_dim,
            out_dim,
            weight: lecun_normal(&mut rng, in_dim, in_dim * out_dim),
            bias: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// SIMD lane-block width of the batched dense kernel (one full AVX-512
/// vector of `f32`; narrower ISAs just use two or four registers).
const LANES: usize = 16;

/// Computes `OB` output rows × `LANES` batch lanes of `y = W x + b` with
/// all accumulators in registers: the constant trip counts let the
/// compiler fully unroll and vectorize the j/s loops, so each k step is
/// one lane load plus `OB` broadcast-FMAs.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat kernel signature keeps the hot path monomorphic
fn lane_kernel<const OB: usize>(
    weight: &[f32],
    bias: &[f32],
    xs: &[f32],
    os: &mut [f32],
    in_dim: usize,
    b: usize,
    o0: usize,
    s0: usize,
) {
    let mut acc = [[0.0f32; LANES]; OB];
    for (j, a) in acc.iter_mut().enumerate() {
        *a = [bias[o0 + j]; LANES];
    }
    for k in 0..in_dim {
        let base = k * b + s0;
        let xrow: &[f32; LANES] = xs[base..base + LANES].try_into().expect("full lane block");
        for (j, a) in acc.iter_mut().enumerate() {
            let wv = weight[(o0 + j) * in_dim + k];
            for (av, &xv) in a.iter_mut().zip(xrow) {
                *av += wv * xv;
            }
        }
    }
    for (j, a) in acc.iter().enumerate() {
        let ob = (o0 + j) * b + s0;
        os[ob..ob + LANES].copy_from_slice(a);
    }
}

/// The frozen dense layer: weights only, register-blocked batched
/// kernels over the interleaved planes of an [`InferCtx`].
struct FrozenDense {
    in_dim: usize,
    out_dim: usize,
    weight: Vec<f32>, // [out][in]
    bias: Vec<f32>,
}

impl FrozenDense {
    /// One weight-matrix pass serves the whole batch. The hot path is a
    /// register-blocked micro-kernel (see [`lane_kernel`]): LANES-wide
    /// accumulators stay in vector registers across the whole k loop and
    /// OB output rows share each input-lane load. Accumulation order per
    /// output matches `Dense::forward` — bias, then inputs in ascending
    /// order — so results stay bit-equal.
    fn run(&self, xs: &[f32], os: &mut [f32], b: usize) {
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        let mut s0 = 0;
        while s0 < b {
            let sl = LANES.min(b - s0);
            if sl == LANES {
                let mut o0 = 0;
                while o0 + 8 <= out_dim {
                    lane_kernel::<8>(&self.weight, &self.bias, xs, os, in_dim, b, o0, s0);
                    o0 += 8;
                }
                while o0 < out_dim {
                    lane_kernel::<1>(&self.weight, &self.bias, xs, os, in_dim, b, o0, s0);
                    o0 += 1;
                }
            } else {
                // Ragged trailing lanes (batch not a multiple of LANES).
                for o in 0..out_dim {
                    let row = &self.weight[o * in_dim..(o + 1) * in_dim];
                    let mut acc = [0.0f32; LANES];
                    acc[..sl].fill(self.bias[o]);
                    for (k, &wv) in row.iter().enumerate() {
                        let xrow = &xs[k * b + s0..k * b + s0 + sl];
                        for (av, &xv) in acc[..sl].iter_mut().zip(xrow) {
                            *av += wv * xv;
                        }
                    }
                    let ob = o * b + s0;
                    os[ob..ob + sl].copy_from_slice(&acc[..sl]);
                }
            }
            s0 += sl;
        }
    }
}

impl InferOp for FrozenDense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        assert_eq!(ctx.elems(), self.in_dim, "dense input length mismatch");
        // Both kernel paths fully overwrite the output plane — no
        // zero-fill needed.
        ctx.produce(&[self.out_dim], false, |xs, os, _, b| {
            self.run(xs, os, b);
        });
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        dense_out_shape(self.in_dim, self.out_dim, in_shape)
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    #[allow(clippy::needless_range_loop)] // o indexes weight rows and outputs in lockstep
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.len(), self.in_dim, "dense input length mismatch");
        let xs = x.as_slice();
        let mut out = Tensor::zeros(vec![self.out_dim]);
        let os = out.as_mut_slice();
        for o in 0..self.out_dim {
            let row = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (wv, xv) in row.iter().zip(xs.iter()) {
                acc += wv * xv;
            }
            os[o] = acc;
        }
        self.cache_x = Some(x.clone());
        out
    }

    #[allow(clippy::needless_range_loop)] // o indexes weight rows and grads in lockstep
    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without forward");
        let xs = x.as_slice();
        let gs = grad.as_slice();
        let mut gx = Tensor::zeros(vec![self.in_dim]);
        let gxs = gx.as_mut_slice();
        for o in 0..self.out_dim {
            let g = gs[o];
            self.grad_b[o] += g;
            let row = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.grad_w[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * xs[i];
                gxs[i] += g * row[i];
            }
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(FrozenDense {
            in_dim: self.in_dim,
            out_dim: self.out_dim,
            weight: self.weight.clone(),
            bias: self.bias.clone(),
        })
    }

    fn freeze_int8(&self, in_scale: f32, out_scale: f32) -> Option<Int8Freeze> {
        let parts = quantize_layer(
            "dense",
            &self.weight,
            &self.bias,
            self.out_dim,
            in_scale,
            out_scale,
        );
        Some(Int8Freeze::Requantized {
            op: Box::new(Int8Dense {
                in_dim: self.in_dim,
                out_dim: self.out_dim,
                weight: parts.weight,
                m: parts.m,
                bq: parts.bq,
                out_scale,
            }),
            info: parts.info,
        })
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        vec![
            ParamView {
                w: &mut self.weight,
                g: &mut self.grad_w,
            },
            ParamView {
                w: &mut self.bias,
                g: &mut self.grad_b,
            },
        ]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_affine_map() {
        let mut d = Dense::new(2, 2, 0);
        d.weight.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        d.bias.copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], vec![2]);
        let y = d.forward(&x, false);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn param_count() {
        let mut d = Dense::new(896, 128, 0);
        assert_eq!(d.num_params(), 896 * 128 + 128);
    }

    #[test]
    fn frozen_matches_forward_across_batch_sizes() {
        let mut d = Dense::new(10, 7, 3);
        let model = crate::FrozenModel::from_ops(vec![d.freeze()]);
        for b in [1usize, 15, 16, 17, 48] {
            let xs: Vec<Tensor> = (0..b)
                .map(|s| {
                    Tensor::from_vec(
                        (0..10)
                            .map(|e| ((e * 7 + s) % 11) as f32 * 0.2 - 1.0)
                            .collect(),
                        vec![10],
                    )
                })
                .collect();
            let mut ctx = model.ctx();
            let got = model.infer_batch(&xs, &mut ctx);
            for (x, g) in xs.iter().zip(&got) {
                assert_eq!(d.forward(x, false).as_slice(), g.as_slice(), "b={b}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // wi indexes weight and grad in lockstep
    fn gradient_check() {
        let mut d = Dense::new(3, 2, 1);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1], vec![3]);
        let y = d.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; 2], y.shape().to_vec());
        d.zero_grads();
        let _ = d.forward(&x, true);
        let gx = d.backward(&ones);

        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp: f32 = d.forward(&xp, false).as_slice().iter().sum();
            let fm: f32 = d.forward(&xm, false).as_slice().iter().sum();
            let want = (fp - fm) / (2.0 * eps);
            assert!((want - gx.as_slice()[i]).abs() < 1e-2);
        }
        let gw = d.grad_w.clone();
        for wi in 0..d.weight.len() {
            let orig = d.weight[wi];
            d.weight[wi] = orig + eps;
            let fp: f32 = d.forward(&x, false).as_slice().iter().sum();
            d.weight[wi] = orig - eps;
            let fm: f32 = d.forward(&x, false).as_slice().iter().sum();
            d.weight[wi] = orig;
            let want = (fp - fm) / (2.0 * eps);
            assert!((want - gw[wi]).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_panics() {
        let mut d = Dense::new(3, 2, 1);
        let _ = d.forward(&Tensor::zeros(vec![4]), false);
    }
}
