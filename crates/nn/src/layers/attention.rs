//! The spatial-attention block of the DeepCSI classifier.

use crate::frozen::{resize_buf, InferCtx, InferOp};
use crate::layer::{Layer, ParamView};
use crate::layers::activation::{sigmoid_val, Sigmoid};
use crate::layers::conv::{Conv2d, FrozenConv2d};
use crate::tensor::Tensor;

/// CBAM-style spatial attention with a residual skip (Fig. 4, §III-C):
///
/// 1. max- and mean-pool the input feature maps over the channel
///    dimension,
/// 2. concatenate the two maps and pass them through a small convolution
///    with sigmoid activation, producing per-position weights,
/// 3. multiply the input by the weights, and
/// 4. add the input back (skip connection).
///
/// "Thanks to the attention block, the algorithm learns where the most
/// relevant information is located within the feature maps."
#[derive(Clone)]
pub struct SpatialAttention {
    conv: Conv2d,
    sigmoid: Sigmoid,
    cache_x: Option<Tensor>,
    cache_a: Option<Tensor>,
    cache_argmax: Vec<usize>,
}

impl SpatialAttention {
    /// Creates the block; `kernel_w` is the width of the attention
    /// convolution's `(1, kernel_w)` kernel.
    pub fn new(kernel_w: usize, seed: u64) -> Self {
        SpatialAttention {
            conv: Conv2d::new(2, 1, (1, kernel_w), seed ^ 0xA77E),
            sigmoid: Sigmoid::new(),
            cache_x: None,
            cache_a: None,
            cache_argmax: Vec::new(),
        }
    }
}

/// The frozen attention block: an embedded frozen convolution plus the
/// (stateless) pooling/sigmoid/residual arithmetic. The pooled maps and
/// attention logits live in the [`InferCtx`] scratch planes; the
/// residual multiply runs in place on the activation plane, so the whole
/// block moves no data beyond its two small scratch buffers.
struct FrozenSpatialAttention {
    conv: FrozenConv2d,
}

impl InferOp for FrozenSpatialAttention {
    fn name(&self) -> &'static str {
        "spatial_attention"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        let [c, h, w]: [usize; 3] = ctx
            .shape()
            .try_into()
            .expect("attention input must be rank 3");
        let b = ctx.batch_size();
        let hw = h * w;
        // Channel-wise max and mean maps into scratch0, batch lanes
        // innermost; the channel scan order matches `forward` (strict `>`
        // keeps the first maximum, the mean sums channels in ascending
        // order).
        resize_buf(&mut ctx.scratch0, 2 * hw * b);
        ctx.scratch0.fill(0.0);
        {
            let (xs, ps) = (&ctx.cur, &mut ctx.scratch0);
            for p in 0..hw {
                let max_base = p * b;
                let mean_base = (hw + p) * b;
                ps[max_base..max_base + b].copy_from_slice(&xs[p * b..(p + 1) * b]);
                for ci in 0..c {
                    let ibase = (ci * hw + p) * b;
                    for s in 0..b {
                        let v = xs[ibase + s];
                        if v > ps[max_base + s] {
                            ps[max_base + s] = v;
                        }
                        ps[mean_base + s] += v;
                    }
                }
                for s in 0..b {
                    // `forward` divides the plain sum; multiply-by-inverse
                    // would round differently, so divide here too.
                    ps[mean_base + s] /= c as f32;
                }
            }
        }
        // Attention logits into scratch1 (zeroed for the conv's
        // accumulating path), then the sigmoid in place.
        resize_buf(&mut ctx.scratch1, self.conv.out_ch() * hw * b);
        ctx.scratch1.fill(0.0);
        self.conv
            .run(&ctx.scratch0, &mut ctx.scratch1, (2, h, w), b);
        for v in ctx.scratch1.iter_mut() {
            *v = sigmoid_val(*v);
        }
        // Y = X⊙A + X, the attention map broadcast over channels — in
        // place on the activation plane.
        let (os, avs) = (&mut ctx.cur, &ctx.scratch1);
        for ci in 0..c {
            for p in 0..hw {
                let obase = (ci * hw + p) * b;
                let abase = p * b;
                for s in 0..b {
                    let v = os[obase + s];
                    os[obase + s] = v * avs[abase + s] + v;
                }
            }
        }
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        if in_shape.len() != 3 {
            return Err(format!(
                "attention needs a rank-3 input, got rank {}",
                in_shape.len()
            ));
        }
        Ok(in_shape.to_vec())
    }
}

impl Layer for SpatialAttention {
    fn name(&self) -> &'static str {
        "spatial_attention"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [c, h, w]: [usize; 3] = x
            .shape()
            .try_into()
            .expect("attention input must be rank 3");
        // Channel-wise max and mean maps.
        let mut pooled = Tensor::zeros(vec![2, h, w]);
        self.cache_argmax = vec![0; h * w];
        for hi in 0..h {
            for wi in 0..w {
                let mut best_c = 0usize;
                let mut best = x.at3(0, hi, wi);
                let mut sum = 0.0f32;
                for ci in 0..c {
                    let v = x.at3(ci, hi, wi);
                    sum += v;
                    if v > best {
                        best = v;
                        best_c = ci;
                    }
                }
                *pooled.at3_mut(0, hi, wi) = best;
                *pooled.at3_mut(1, hi, wi) = sum / c as f32;
                self.cache_argmax[hi * w + wi] = best_c;
            }
        }
        let logits = self.conv.forward(&pooled, train);
        let a = self.sigmoid.forward(&logits, train);
        // Y = X⊙A + X.
        let mut out = x.clone();
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let v = out.at3(ci, hi, wi);
                    *out.at3_mut(ci, hi, wi) = v * a.at3(0, hi, wi) + v;
                }
            }
        }
        self.cache_x = Some(x.clone());
        self.cache_a = Some(a);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without forward");
        let a = self.cache_a.take().expect("backward without forward");
        let [c, h, w]: [usize; 3] = x.shape().try_into().expect("rank 3");

        // Through Y = X⊙A + X:
        //   ∂/∂X  = grad·(A + 1)   (attention + skip branches)
        //   ∂/∂A  = Σ_c grad·X
        let mut gx = grad.clone();
        let mut ga = Tensor::zeros(vec![1, h, w]);
        for hi in 0..h {
            for wi in 0..w {
                let av = a.at3(0, hi, wi);
                let mut gsum = 0.0f32;
                for ci in 0..c {
                    let g = grad.at3(ci, hi, wi);
                    gsum += g * x.at3(ci, hi, wi);
                    *gx.at3_mut(ci, hi, wi) = g * (av + 1.0);
                }
                *ga.at3_mut(0, hi, wi) = gsum;
            }
        }

        // Through sigmoid and the attention convolution.
        let g_logits = self.sigmoid.backward(&ga);
        let g_pooled = self.conv.backward(&g_logits);

        // Through the max/mean channel pooling back into X.
        for hi in 0..h {
            for wi in 0..w {
                let gmax = g_pooled.at3(0, hi, wi);
                let gmean = g_pooled.at3(1, hi, wi) / c as f32;
                let best_c = self.cache_argmax[hi * w + wi];
                *gx.at3_mut(best_c, hi, wi) += gmax;
                for ci in 0..c {
                    *gx.at3_mut(ci, hi, wi) += gmean;
                }
            }
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(FrozenSpatialAttention {
            conv: self.conv.frozen(),
        })
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        self.conv.params()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_input() {
        let mut att = SpatialAttention::new(7, 1);
        let x = Tensor::zeros(vec![8, 1, 20]);
        let y = att.forward(&x, false);
        assert_eq!(y.shape(), &[8, 1, 20]);
    }

    #[test]
    fn param_count_is_conv_only() {
        let mut att = SpatialAttention::new(7, 1);
        // 2 input maps × kernel 7 × 1 output + 1 bias = 15.
        assert_eq!(att.num_params(), 15);
    }

    #[test]
    fn output_stays_between_x_and_2x_for_positive_input() {
        // A ∈ (0,1) → Y = X(1+A) ∈ (X, 2X) element-wise for X > 0.
        let mut att = SpatialAttention::new(3, 2);
        let x = Tensor::from_vec((1..=24).map(|v| v as f32 * 0.1).collect(), vec![4, 1, 6]);
        let y = att.forward(&x, false);
        for (xv, yv) in x.as_slice().iter().zip(y.as_slice()) {
            assert!(*yv > *xv && *yv < 2.0 * *xv, "x={xv} y={yv}");
        }
    }

    #[test]
    fn frozen_matches_forward_across_batch_sizes() {
        let mut att = SpatialAttention::new(3, 5);
        let model = crate::FrozenModel::from_ops(vec![att.freeze()]);
        for b in [1usize, 3, 16, 21] {
            let xs: Vec<Tensor> = (0..b)
                .map(|s| {
                    Tensor::from_vec(
                        (0..3 * 6)
                            .map(|e| ((e * 7 + s * 11) % 13) as f32 * 0.3 - 1.8)
                            .collect(),
                        vec![3, 1, 6],
                    )
                })
                .collect();
            let mut ctx = model.ctx();
            let got = model.infer_batch(&xs, &mut ctx);
            for (x, g) in xs.iter().zip(&got) {
                assert_eq!(att.forward(x, false).as_slice(), g.as_slice(), "b={b}");
            }
        }
    }

    #[test]
    fn gradient_check_end_to_end() {
        let mut att = SpatialAttention::new(3, 3);
        let x = Tensor::from_vec(
            (0..18).map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.2).collect(),
            vec![3, 1, 6],
        );
        let y = att.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape().to_vec());
        att.zero_grads();
        let _ = att.forward(&x, true);
        let gx = att.backward(&ones);

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp: f32 = att.forward(&xp, false).as_slice().iter().sum();
            let fm: f32 = att.forward(&xm, false).as_slice().iter().sum();
            let want = (fp - fm) / (2.0 * eps);
            let got = gx.as_slice()[i];
            assert!(
                (want - got).abs() < 0.05,
                "input grad {i}: fd {want} vs bp {got}"
            );
        }
    }

    #[test]
    fn attention_weight_gradient_check() {
        let mut att = SpatialAttention::new(3, 4);
        let x = Tensor::from_vec(
            (0..12).map(|i| (i as f32 * 0.37).cos()).collect(),
            vec![2, 1, 6],
        );
        att.zero_grads();
        let y = att.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape().to_vec());
        let _ = att.backward(&ones);
        let grads: Vec<f32> = att.params().iter().flat_map(|p| p.g.to_vec()).collect();

        let eps = 1e-2f32;
        let mut idx = 0usize;
        for p in 0..2 {
            let len = att.params()[p].w.len();
            for wi in 0..len {
                let orig = att.params()[p].w[wi];
                att.params()[p].w[wi] = orig + eps;
                let fp: f32 = att.forward(&x, false).as_slice().iter().sum();
                att.params()[p].w[wi] = orig - eps;
                let fm: f32 = att.forward(&x, false).as_slice().iter().sum();
                att.params()[p].w[wi] = orig;
                let want = (fp - fm) / (2.0 * eps);
                assert!(
                    (want - grads[idx]).abs() < 0.05,
                    "param {idx}: fd {want} vs bp {}",
                    grads[idx]
                );
                idx += 1;
            }
        }
    }
}
