//! The layer zoo used by the DeepCSI classifier.

mod activation;
mod attention;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::{Selu, Sigmoid};
pub use attention::SpatialAttention;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::AlphaDropout;
pub use flatten::Flatten;
pub use pool::MaxPool2d;
