//! Element-wise activations: SELU and sigmoid.

use crate::fastmath::poly_exp;
use crate::frozen::{InferCtx, InferOp};
use crate::layer::{Layer, ParamView};
use crate::tensor::Tensor;

/// SELU constants from Klambauer et al., "Self-Normalizing Neural
/// Networks" (the paper's activation of choice).
pub(crate) const SELU_LAMBDA: f32 = 1.050_701;
pub(crate) const SELU_ALPHA: f32 = 1.673_263_2;

/// The scalar SELU map, shared verbatim by [`Selu::forward`] and the
/// frozen op so training and serving stay bit-identical. Uses
/// [`poly_exp`] — the polynomial `exp` both paths agreed on.
#[inline(always)]
pub(crate) fn selu_val(x: f32) -> f32 {
    // Both halves are computed and a select picks one: with the
    // branch-free `poly_exp` the whole map if-converts, so activation
    // loops vectorize instead of branching per element. Results are
    // identical to the branching form.
    let neg = SELU_LAMBDA * SELU_ALPHA * (poly_exp(x) - 1.0);
    let pos = SELU_LAMBDA * x;
    if x > 0.0 {
        pos
    } else {
        neg
    }
}

/// The scalar logistic sigmoid, shared by [`Sigmoid::forward`] and the
/// frozen attention path (same [`poly_exp`] everywhere).
#[inline(always)]
pub(crate) fn sigmoid_val(x: f32) -> f32 {
    1.0 / (1.0 + poly_exp(-x))
}

/// The SELU activation `λ·(x if x > 0 else α(eˣ − 1))`.
#[derive(Clone, Default)]
pub struct Selu {
    cache_x: Option<Tensor>,
}

impl Selu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Frozen SELU: stateless element-wise map.
struct FrozenSelu;

impl InferOp for FrozenSelu {
    fn name(&self) -> &'static str {
        "selu"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        ctx.map_in_place(selu_val);
    }
}

impl Layer for Selu {
    fn name(&self) -> &'static str {
        "selu"
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut out = x.clone();
        for v in out.as_mut_slice() {
            *v = selu_val(*v);
        }
        self.cache_x = Some(x.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without forward");
        let mut gx = grad.clone();
        for (g, &xv) in gx.as_mut_slice().iter_mut().zip(x.as_slice()) {
            let d = if xv > 0.0 {
                SELU_LAMBDA
            } else {
                SELU_LAMBDA * SELU_ALPHA * poly_exp(xv)
            };
            *g *= d;
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(FrozenSelu)
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// The logistic sigmoid `1/(1+e^{−x})` (used inside the attention block).
#[derive(Clone, Default)]
pub struct Sigmoid {
    cache_y: Option<Tensor>,
}

impl Sigmoid {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Frozen sigmoid: stateless element-wise map.
struct FrozenSigmoid;

impl InferOp for FrozenSigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        ctx.map_in_place(sigmoid_val);
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut out = x.clone();
        for v in out.as_mut_slice() {
            *v = sigmoid_val(*v);
        }
        self.cache_y = Some(out.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let y = self.cache_y.take().expect("backward without forward");
        let mut gx = grad.clone();
        for (g, &yv) in gx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *g *= yv * (1.0 - yv);
        }
        gx
    }

    fn freeze(&self) -> Box<dyn InferOp> {
        Box::new(FrozenSigmoid)
    }

    fn params(&mut self) -> Vec<ParamView<'_>> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selu_known_values() {
        let mut s = Selu::new();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], vec![3]);
        let y = s.forward(&x, false);
        assert!((y.as_slice()[0] - SELU_LAMBDA).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 0.0);
        let want = SELU_LAMBDA * SELU_ALPHA * ((-1.0f32).exp() - 1.0);
        assert!((y.as_slice()[2] - want).abs() < 1e-6);
    }

    #[test]
    fn selu_is_self_normalizing_on_gaussian_input() {
        // Feeding N(0,1) data through SELU keeps mean ≈ 0 and var ≈ 1 —
        // the fixed-point property the initialisation relies on.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 50_000;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
            })
            .collect();
        let mut s = Selu::new();
        let y = s.forward(&Tensor::from_vec(data, vec![n]), false);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / n as f32;
        let var: f32 = y
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn selu_gradient_check() {
        let mut s = Selu::new();
        let x = Tensor::from_vec(vec![0.5, -0.5, 2.0, -2.0], vec![4]);
        let _ = s.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; 4], vec![4]);
        let gx = s.backward(&ones);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp: f32 = s.forward(&xp, false).as_slice().iter().sum();
            let fm: f32 = s.forward(&xm, false).as_slice().iter().sum();
            assert!(((fp - fm) / (2.0 * eps) - gx.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-3.0, 0.0, 3.0], vec![3]);
        let y = s.forward(&x, false);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!((y.as_slice()[0] + y.as_slice()[2] - 1.0).abs() < 1e-6);
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.2], vec![3]);
        let _ = s.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; 3], vec![3]);
        let gx = s.backward(&ones);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp: f32 = s.forward(&xp, false).as_slice().iter().sum();
            let fm: f32 = s.forward(&xm, false).as_slice().iter().sum();
            assert!(((fp - fm) / (2.0 * eps) - gx.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn frozen_activations_match_forward() {
        for x in [-4.0f32, -0.7, 0.0, 0.3, 5.0] {
            let t = Tensor::from_vec(vec![x], vec![1]);
            let mut net = crate::Network::new();
            net.push(Selu::new());
            net.push(Sigmoid::new());
            let frozen = net.freeze();
            let mut ctx = frozen.ctx();
            assert_eq!(
                net.forward(&t, false).as_slice(),
                frozen.infer(&t, &mut ctx).as_slice()
            );
        }
    }
}
