//! Classification metrics: accuracy and confusion matrices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A square confusion matrix over `n` classes; rows are actual labels,
/// columns are predictions — the layout of Figs. 8, 9, 11, 15, 16b and 17
/// in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `n` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one class required");
        ConfusionMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n
    }

    /// Records one (actual, predicted) observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n && predicted < self.n, "class out of range");
        self.counts[actual * self.n + predicted] += 1;
    }

    /// Raw count of (actual, predicted).
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.n + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy in `[0, 1]`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (diagonal / row sum); `None` for unseen classes.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.n).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Row-normalised value (the quantity the paper's colour maps show).
    pub fn normalized(&self, actual: usize, predicted: usize) -> f64 {
        let row: u64 = (0..self.n).map(|p| self.count(actual, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.count(actual, predicted) as f64 / row as f64
        }
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "actual\\pred {}",
            (0..self.n).map(|i| format!("{i:>5}")).collect::<String>()
        )?;
        for a in 0..self.n {
            write!(f, "{a:>11} ")?;
            for p in 0..self.n {
                write!(f, "{:>5.2}", self.normalized(a, p))?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy: {:.2}%", self.accuracy() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut m = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..10 {
                m.add(c, c);
            }
        }
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.total(), 30);
        for c in 0..3 {
            assert_eq!(m.recall(c), Some(1.0));
        }
    }

    #[test]
    fn known_mixed_counts() {
        let mut m = ConfusionMatrix::new(2);
        m.add(0, 0);
        m.add(0, 0);
        m.add(0, 1);
        m.add(1, 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.normalized(0, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zero_accuracy() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(0), None);
        assert_eq!(m.normalized(1, 1), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new(2);
        a.add(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.add(0, 1);
        b.add(1, 1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    fn display_contains_accuracy() {
        let mut m = ConfusionMatrix::new(2);
        m.add(0, 0);
        let s = m.to_string();
        assert!(s.contains("accuracy"));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn out_of_range_panics() {
        let mut m = ConfusionMatrix::new(2);
        m.add(2, 0);
    }
}
