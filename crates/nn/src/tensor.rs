//! Dense row-major f32 tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Rank 1–3 is what the DeepCSI classifier needs: feature maps are
/// `(channels, height, width)`, dense activations are `(features,)`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or zero-sized dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension");
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Wraps a data vector with a shape.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the shape's volume.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let want: usize = shape.iter().product();
        assert_eq!(data.len(), want, "data length vs shape mismatch");
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements (impossible by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access for rank-3 tensors `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Debug-panics when out of bounds or the rank is not 3.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// Mutable rank-3 element access.
    #[inline]
    pub fn at3_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        &mut self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// Reshapes in place (volume must be preserved).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different volume.
    pub fn reshape(mut self, shape: Vec<usize>) -> Tensor {
        let want: usize = shape.iter().product();
        assert_eq!(self.data.len(), want, "reshape changes volume");
        self.shape = shape;
        self
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[", self.shape)?;
        for (i, v) in self.data.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rank3_indexing_is_row_major() {
        let mut t = Tensor::zeros(vec![2, 2, 3]);
        *t.at3_mut(1, 0, 2) = 5.0;
        assert_eq!(t.at3(1, 0, 2), 5.0);
        // (1·2 + 0)·3 + 2 = 8
        assert_eq!(t.as_slice()[8], 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), vec![2, 3]);
        let r = t.clone().reshape(vec![6]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[6]);
    }

    #[test]
    #[should_panic(expected = "reshape changes volume")]
    fn bad_reshape_panics() {
        let _ = Tensor::zeros(vec![4]).reshape(vec![5]);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], vec![4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn finiteness_check() {
        let mut t = Tensor::zeros(vec![2]);
        assert!(t.is_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_volume() {
        let _ = Tensor::from_vec(vec![0.0; 5], vec![2, 3]);
    }

    #[test]
    fn debug_is_nonempty_and_truncated() {
        let t = Tensor::zeros(vec![100]);
        let s = format!("{t:?}");
        assert!(s.contains("…"));
        assert!(!s.is_empty());
    }
}
