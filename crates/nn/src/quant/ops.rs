//! The int8 op set: domain conversions, integer conv/dense kernels and
//! the int8 max-pool.
//!
//! All ops drive the same [`InferCtx`] as the f32 pipeline, using its
//! quantized ping-pong planes (`qcur`/`qnxt`). Layout and element type
//! are chosen for the x86 integer dot-product units:
//!
//! * **Sample-major layout** (`[sample][element]`, the transpose of the
//!   f32 planes): every conv/dense output becomes a *contiguous* dot
//!   product over one sample's elements, the shape LLVM reliably
//!   compiles to `vpmaddwd`/`vpdpwssd` reductions (32 multiplies + 16
//!   adds, or a fully fused multiply-accumulate, per instruction).
//!   The batch-innermost broadcast form the f32 kernels use would pin
//!   integer math on the 2-µop `vpmulld` instead — measurably slower
//!   than f32 FMA.
//! * **`i16`-materialized int8 values**: activations and weights are
//!   quantized to the symmetric int8 grid `[-127, 127]` but stored as
//!   `i16`, because the dot-product units consume 16-bit operands (the
//!   i8→i16 widening is done once at quantize/freeze time, not per
//!   multiply). Products are exact in the `i16 × i16 → i32` accumulate;
//!   the plane still costs half the f32 footprint.
//!
//! Conv/dense requantize once at layer exit:
//!
//! ```text
//! q_out = clamp(round(acc · m[o] + bias[o]/s_out)),   m[o] = s_in · s_w[o] / s_out
//! ```
//!
//! with the input, per-channel weight and output scales folded into one
//! f32 multiplier per output channel — the only float arithmetic in a
//! quantized layer. The convolution runs as per-sample im2col (patches
//! staged into the context's `qscratch`, zero-padding materialized as
//! literal zeros, which contribute exactly nothing to the integer
//! accumulate) followed by the same register-blocked dot kernel as
//! dense.
//!
//! Every computation is per-sample, which keeps the quantized pipeline
//! bit-exact under any [`crate::FrozenModel::infer_batch_par`] lane
//! split — `infer_threads` can never change an int8 verdict, exactly as
//! for f32.

use crate::frozen::{InferCtx, InferOp};

/// k-chunk width of the dot kernels: 128 i16 elements (four cache
/// lines). One x chunk is reused across all [`OB`] weight rows, and the
/// constant chunk width lets LLVM compile each chunk reduction to
/// integer dot-product instructions (`vpmaddwd`/`vpdpwssd`) — measured
/// the fastest of the 64/128/256 widths on an AVX-512 host.
const CHUNK: usize = 128;

/// Output rows computed per block: 8 weight rows share every x-chunk
/// load and stay L1-resident across the samples of a batch.
const OB: usize = 8;

/// `ROWS` dot products of the pre-sliced weight rows against one sample
/// row `xr` (all slices the same length). The constant row count and
/// chunk width let the compiler fully unroll the block; pre-slicing the
/// rows (rather than indexing a flat `[out][len]` matrix with a runtime
/// `len`) is what lets it fold the addressing and keep the reduction in
/// dot-product instructions.
#[inline(always)]
fn dot_rows<const ROWS: usize>(rows: &[&[i16]; ROWS], xr: &[i16]) -> [i32; ROWS] {
    let len = xr.len();
    let mut acc = [0i32; ROWS];
    let chunks = len / CHUNK;
    for kc in 0..chunks {
        let base = kc * CHUNK;
        let xc: &[i16; CHUNK] = xr[base..base + CHUNK].try_into().expect("full chunk");
        for (j, aj) in acc.iter_mut().enumerate() {
            let wr: &[i16; CHUNK] = rows[j][base..base + CHUNK].try_into().expect("full chunk");
            let mut t = 0i32;
            for l in 0..CHUNK {
                t += i32::from(wr[l]) * i32::from(xc[l]);
            }
            *aj += t;
        }
    }
    let tail = chunks * CHUNK;
    if tail < len {
        for (j, aj) in acc.iter_mut().enumerate() {
            let mut t = 0i32;
            for (&p, &q) in rows[j][tail..len].iter().zip(&xr[tail..]) {
                t += i32::from(p) * i32::from(q);
            }
            *aj += t;
        }
    }
    acc
}

/// Folds an `i32` accumulator back onto the int8 grid:
/// `clamp(round(acc · m + bq))` with round-to-nearest and the symmetric
/// `[-127, 127]` range. One f32 multiply-add per output element — the
/// only float arithmetic in a quantized layer.
#[inline(always)]
fn requant(acc: i32, m: f32, bq: f32) -> i16 {
    (acc as f32).mul_add(m, bq).round().clamp(-127.0, 127.0) as i16
}

/// Entry into the int8 domain: quantizes the f32 plane at a fixed,
/// calibration-derived scale (transposing to the sample-major layout
/// the integer kernels want).
pub(crate) struct Quantize {
    pub(crate) scale: f32,
}

impl InferOp for Quantize {
    fn name(&self) -> &'static str {
        "quantize"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        ctx.quantize_in_place(self.scale);
    }
}

/// Exit from the int8 domain: reconstructs the batch-innermost f32
/// plane from the sample-major quantized plane (`x = q · s`).
pub(crate) struct Dequantize;

impl InferOp for Dequantize {
    fn name(&self) -> &'static str {
        "dequantize"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        ctx.dequantize_in_place();
    }
}

/// The int8 dense layer: int8-grid weights (i16-materialized),
/// per-output-channel requantize multipliers, bias folded into the
/// requantize step.
pub(crate) struct Int8Dense {
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
    /// Quantized weights on the int8 grid, `[out][in]`, widened once at
    /// freeze time.
    pub(crate) weight: Vec<i16>,
    /// Per-output requantize multiplier `s_in · s_w[o] / s_out`.
    pub(crate) m: Vec<f32>,
    /// Per-output bias in output-scale units (`bias[o] / s_out`).
    pub(crate) bq: Vec<f32>,
    /// Activation scale of this layer's output plane.
    pub(crate) out_scale: f32,
}

impl InferOp for Int8Dense {
    fn name(&self) -> &'static str {
        "int8_dense"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        assert_eq!(ctx.elems(), self.in_dim, "dense input length mismatch");
        let (in_dim, out_dim) = (self.in_dim, self.out_dim);
        ctx.produce_q(&[out_dim], self.out_scale, |xs, os, _, b| {
            // Output-row blocks outer: the 8 weight rows stay hot in L1
            // across every sample of the batch.
            let mut o0 = 0;
            while o0 + OB <= out_dim {
                let rows: [&[i16]; OB] =
                    std::array::from_fn(|j| &self.weight[(o0 + j) * in_dim..(o0 + j + 1) * in_dim]);
                for s in 0..b {
                    let acc = dot_rows(&rows, &xs[s * in_dim..(s + 1) * in_dim]);
                    for (j, &a) in acc.iter().enumerate() {
                        os[s * out_dim + o0 + j] = requant(a, self.m[o0 + j], self.bq[o0 + j]);
                    }
                }
                o0 += OB;
            }
            while o0 < out_dim {
                let rows: [&[i16]; 1] = [&self.weight[o0 * in_dim..(o0 + 1) * in_dim]];
                for s in 0..b {
                    let acc = dot_rows(&rows, &xs[s * in_dim..(s + 1) * in_dim]);
                    os[s * out_dim + o0] = requant(acc[0], self.m[o0], self.bq[o0]);
                }
                o0 += 1;
            }
        });
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        dense_out_shape(self.in_dim, self.out_dim, in_shape)
    }
}

/// The int8 convolution: im2col + the dense dot kernel, stride-1 "same"
/// zero padding mirroring `Conv2d`.
pub(crate) struct Int8Conv2d {
    pub(crate) in_ch: usize,
    pub(crate) out_ch: usize,
    pub(crate) kh: usize,
    pub(crate) kw: usize,
    /// Quantized weights on the int8 grid, `[out][in][kh][kw]`, widened
    /// once at freeze time. Each row is exactly one im2col patch long.
    pub(crate) weight: Vec<i16>,
    /// Per-output requantize multiplier `s_in · s_w[o] / s_out`.
    pub(crate) m: Vec<f32>,
    /// Per-output bias in output-scale units.
    pub(crate) bq: Vec<f32>,
    /// Activation scale of this layer's output plane.
    pub(crate) out_scale: f32,
}

impl Int8Conv2d {
    /// Stages one sample's im2col patch matrix into `patches`
    /// (`[h·w][c·kh·kw]`, padding taps as literal zeros). Dispatches to
    /// a kernel-width-monomorphized body for the paper's widths, so the
    /// interior copies compile to fixed-size moves instead of `memcpy`
    /// calls — staging must stay a small fraction of the dot-product
    /// work.
    /// Kernel widths the monomorphized im2col dispatch covers.
    /// `Conv2d::freeze_int8` keeps wider kernels on the f32 op, so an
    /// unsupported width can never reach `apply` — the pipeline still
    /// assembles, it just leaves that layer unquantized.
    pub(crate) fn supports_width(kw: usize) -> bool {
        matches!(kw, 1 | 3 | 5 | 7 | 9 | 11)
    }

    fn im2col(&self, xs: &[i16], patches: &mut [i16], c: usize, h: usize, w: usize) {
        match self.kw {
            1 => self.im2col_kw::<1>(xs, patches, c, h, w),
            3 => self.im2col_kw::<3>(xs, patches, c, h, w),
            5 => self.im2col_kw::<5>(xs, patches, c, h, w),
            7 => self.im2col_kw::<7>(xs, patches, c, h, w),
            9 => self.im2col_kw::<9>(xs, patches, c, h, w),
            11 => self.im2col_kw::<11>(xs, patches, c, h, w),
            other => panic!("unsupported int8 conv kernel width {other}"),
        }
    }

    fn im2col_kw<const KW: usize>(
        &self,
        xs: &[i16],
        patches: &mut [i16],
        c: usize,
        h: usize,
        w: usize,
    ) {
        debug_assert_eq!(self.kw, KW);
        let kh = self.kh;
        let (ph, pw) = (kh / 2, KW / 2);
        let patch_len = c * kh * KW;
        for oh in 0..h {
            for ow in 0..w {
                // Valid kernel columns: iw = ow + dw − pw ∈ [0, w).
                let lo = pw.saturating_sub(ow);
                let hi = (w + pw - ow).min(KW);
                let interior = lo == 0 && hi == KW;
                let row = &mut patches[(oh * w + ow) * patch_len..][..patch_len];
                for i in 0..c {
                    for dh in 0..kh {
                        let ih = oh + dh;
                        let dst = &mut row[(i * kh + dh) * KW..][..KW];
                        if ih < ph || ih - ph >= h {
                            dst.fill(0);
                            continue;
                        }
                        let src = &xs[(i * h + ih - ph) * w..][..w];
                        if interior {
                            // Fixed-size copy — no memcpy call.
                            let win: &[i16; KW] =
                                src[ow - pw..ow - pw + KW].try_into().expect("window");
                            dst.copy_from_slice(win);
                        } else {
                            dst[..lo].fill(0);
                            dst[lo..hi].copy_from_slice(&src[ow + lo - pw..ow + hi - pw]);
                            dst[hi..].fill(0);
                        }
                    }
                }
            }
        }
    }
}

impl InferOp for Int8Conv2d {
    fn name(&self) -> &'static str {
        "int8_conv2d"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        let [c, h, w]: [usize; 3] = ctx.shape().try_into().expect("conv input must be rank 3");
        assert_eq!(c, self.in_ch, "input channel mismatch");
        let hw = h * w;
        let patch_len = c * self.kh * self.kw;
        let out_ch = self.out_ch;
        // Borrow the im2col scratch out of the ctx before produce_q
        // borrows the planes.
        let mut patches = std::mem::take(&mut ctx.qscratch);
        crate::frozen::resize_buf(&mut patches, hw * patch_len);
        ctx.produce_q(&[out_ch, h, w], self.out_scale, |xs, os, _, b| {
            for s in 0..b {
                self.im2col(&xs[s * c * hw..(s + 1) * c * hw], &mut patches, c, h, w);
                let out = &mut os[s * out_ch * hw..(s + 1) * out_ch * hw];
                // Output-channel blocks outer: 8 weight rows stay hot in
                // L1 while the patch matrix streams by once per block.
                let mut o0 = 0;
                while o0 + OB <= out_ch {
                    let rows: [&[i16]; OB] = std::array::from_fn(|j| {
                        &self.weight[(o0 + j) * patch_len..(o0 + j + 1) * patch_len]
                    });
                    for p in 0..hw {
                        let acc = dot_rows(&rows, &patches[p * patch_len..(p + 1) * patch_len]);
                        for (j, &a) in acc.iter().enumerate() {
                            out[(o0 + j) * hw + p] = requant(a, self.m[o0 + j], self.bq[o0 + j]);
                        }
                    }
                    o0 += OB;
                }
                while o0 < out_ch {
                    let rows: [&[i16]; 1] = [&self.weight[o0 * patch_len..(o0 + 1) * patch_len]];
                    for p in 0..hw {
                        let acc = dot_rows(&rows, &patches[p * patch_len..(p + 1) * patch_len]);
                        out[o0 * hw + p] = requant(acc[0], self.m[o0], self.bq[o0]);
                    }
                    o0 += 1;
                }
            }
        });
        ctx.qscratch = patches;
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        conv_out_shape(self.in_ch, self.out_ch, in_shape)
    }
}

/// The int8 max-pool: max over the quantized plane directly. Max is
/// monotone, so pooling commutes with (de)quantization exactly — the
/// plane's scale passes through unchanged and the op introduces no
/// quantization error of its own.
pub(crate) struct Int8MaxPool {
    pub(crate) kh: usize,
    pub(crate) kw: usize,
}

impl InferOp for Int8MaxPool {
    fn name(&self) -> &'static str {
        "int8_maxpool2d"
    }

    fn apply(&self, ctx: &mut InferCtx) {
        let [c, h, w]: [usize; 3] = ctx.shape().try_into().expect("pool input must be rank 3");
        let oh = h / self.kh;
        let ow = w / self.kw;
        assert!(oh > 0 && ow > 0, "input smaller than pooling kernel");
        let (kh, kw) = (self.kh, self.kw);
        let scale = ctx.qscale;
        ctx.produce_q(&[c, oh, ow], scale, |xs, os, _, b| {
            let (in_elems, out_elems) = (c * h * w, c * oh * ow);
            for s in 0..b {
                let xr = &xs[s * in_elems..(s + 1) * in_elems];
                let out = &mut os[s * out_elems..(s + 1) * out_elems];
                for ci in 0..c {
                    for hi in 0..oh {
                        for wi in 0..ow {
                            let mut best = xr[(ci * h + hi * kh) * w + wi * kw];
                            for dh in 0..kh {
                                for dw in 0..kw {
                                    let v = xr[(ci * h + hi * kh + dh) * w + wi * kw + dw];
                                    if v > best {
                                        best = v;
                                    }
                                }
                            }
                            out[(ci * oh + hi) * ow + wi] = best;
                        }
                    }
                }
            }
        });
    }

    fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>, String> {
        pool_out_shape(in_shape, self.kh, self.kw)
    }
}

/// Shared dense shape rule (used by the f32 and int8 dense ops): any
/// rank is accepted as long as the per-sample volume matches.
pub(crate) fn dense_out_shape(
    in_dim: usize,
    out_dim: usize,
    in_shape: &[usize],
) -> Result<Vec<usize>, String> {
    let elems: usize = in_shape.iter().product();
    if elems != in_dim {
        return Err(format!(
            "dense expects {in_dim} input elements, shape has {elems}"
        ));
    }
    Ok(vec![out_dim])
}

/// Shared convolution shape rule (used by the f32 and int8 conv ops):
/// rank 3 with a matching channel count; "same" padding preserves h×w.
pub(crate) fn conv_out_shape(
    in_ch: usize,
    out_ch: usize,
    in_shape: &[usize],
) -> Result<Vec<usize>, String> {
    let [c, h, w]: [usize; 3] = in_shape
        .try_into()
        .map_err(|_| format!("conv needs a rank-3 input, got rank {}", in_shape.len()))?;
    if c != in_ch {
        return Err(format!("conv expects {in_ch} input channels, got {c}"));
    }
    Ok(vec![out_ch, h, w])
}

/// Shared max-pool shape rule (used by the f32 and int8 pool ops).
pub(crate) fn pool_out_shape(
    in_shape: &[usize],
    kh: usize,
    kw: usize,
) -> Result<Vec<usize>, String> {
    let [c, h, w]: [usize; 3] = in_shape
        .try_into()
        .map_err(|_| format!("pool needs a rank-3 input, got rank {}", in_shape.len()))?;
    let (oh, ow) = (h / kh, w / kw);
    if oh == 0 || ow == 0 {
        return Err(format!(
            "input {h}×{w} smaller than pooling kernel {kh}×{kw}"
        ));
    }
    Ok(vec![c, oh, ow])
}
