//! Post-training int8 quantization for frozen inference.
//!
//! The beamforming feedback angles arrive over the air **already
//! quantized** to a handful of bits, yet the f32 serving path widens
//! everything to float immediately. This module closes that loop: a
//! trained [`crate::Network`] can be snapshotted into an int8
//! [`crate::FrozenModel`] that runs the conv/dense hot loops in integer
//! arithmetic and serves behind the exact same [`crate::InferOp`] seam —
//! the engine, the per-worker [`crate::InferCtx`] scratch and the
//! thread-parallel lane split all work unchanged.
//!
//! The scheme is standard post-training quantization:
//!
//! * **Weights** — per-output-channel symmetric int8: each conv filter /
//!   dense row gets its own scale `s_w[o] = max|w| / 127`, computed from
//!   the weights themselves at freeze time.
//! * **Activations** — per-tensor symmetric int8, calibrated by running
//!   a caller-supplied sample batch through the **f32** frozen model and
//!   recording each op boundary's min/max ([`QuantSpec::calibrate`]).
//! * **Kernels** — conv/dense accumulate `i8 × i8 → i32` and requantize
//!   once at layer exit (`quant::ops`); SELU, sigmoid and the attention
//!   block keep their f32 ops, fed through dequantize/quantize hops in
//!   the context's scratch planes. Max-pool and flatten run inside the
//!   int8 domain (max is monotone; flatten is a shape relabel), so a
//!   conv → pool → conv block round-trips through float only for its
//!   activation function.
//!
//! Assembly ([`crate::Network::freeze_int8`]) walks the training layers,
//! inserts the domain-conversion ops where the numeric domain changes,
//! and validates the finished chain with
//! [`crate::FrozenModel::from_ops_checked`] — a mis-assembled pipeline
//! fails at freeze time with a [`crate::ShapeMismatch`], never inside a
//! serving worker.

pub(crate) mod ops;

use crate::frozen::{FrozenModel, ShapeMismatch};
use crate::layer::Layer;
use crate::tensor::Tensor;
use ops::{Dequantize, Quantize};
use std::fmt;

/// How a layer participates in an int8 pipeline (returned by
/// [`Layer::freeze_int8`]).
pub enum Int8Freeze {
    /// An integer-kernel op that consumes the int8 plane at the layer's
    /// input scale and **requantizes** its output to the layer's
    /// calibrated output scale (conv/dense).
    Requantized {
        /// The int8 op.
        op: Box<dyn crate::InferOp>,
        /// Freeze-time quantization metadata for this layer.
        info: QuantLayerInfo,
    },
    /// An op that transforms the int8 plane without touching its scale
    /// (max-pool, flatten, dropout). Falls back to the layer's f32 op
    /// when the pipeline is in the f32 domain at this point.
    ScalePreserving(Box<dyn crate::InferOp>),
}

/// Freeze-time quantization metadata for one integer-kernel layer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLayerInfo {
    /// Index of the source layer in the training network.
    pub layer: usize,
    /// The source layer's name (`"conv2d"` / `"dense"`).
    pub name: &'static str,
    /// Largest per-channel weight scale (`max_o s_w[o]`).
    pub weight_scale_max: f32,
    /// Largest absolute weight round-trip error,
    /// `max |w − s_w[o] · q(w)|`. Bounded by `weight_scale_max / 2`.
    pub weight_err_max: f32,
    /// Activation scale feeding the layer.
    pub in_scale: f32,
    /// Activation scale of the layer's requantized output.
    pub out_scale: f32,
}

/// Errors from calibration or int8 assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The calibration sample batch was empty.
    EmptySample,
    /// The spec was calibrated on a model with a different layer count.
    BoundaryCount {
        /// Boundaries the network needs (`layers + 1`).
        expected: usize,
        /// Boundaries the spec recorded.
        got: usize,
    },
    /// The assembled op chain does not shape-check against the
    /// calibration input shape.
    Shape(ShapeMismatch),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::EmptySample => write!(f, "calibration sample batch is empty"),
            QuantError::BoundaryCount { expected, got } => write!(
                f,
                "quant spec records {got} activation boundaries, network needs {expected} \
                 (calibrated against a different model?)"
            ),
            QuantError::Shape(s) => write!(f, "int8 pipeline failed shape validation: {s}"),
        }
    }
}

impl std::error::Error for QuantError {}

impl From<ShapeMismatch> for QuantError {
    fn from(s: ShapeMismatch) -> Self {
        QuantError::Shape(s)
    }
}

/// One observed activation range (per-tensor, at one op boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActRange {
    /// Smallest observed value.
    pub min: f32,
    /// Largest observed value.
    pub max: f32,
}

impl ActRange {
    fn empty() -> ActRange {
        ActRange {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
        }
    }

    fn absorb(&mut self, xs: &[f32]) {
        for &v in xs {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// The symmetric int8 scale covering this range
    /// (`max(|min|, |max|) / 127`; `1.0` for a degenerate all-zero
    /// range, where the scale's value cannot matter).
    pub fn scale(&self) -> f32 {
        let amax = self.min.abs().max(self.max.abs());
        if amax > 0.0 && amax.is_finite() {
            amax / 127.0
        } else {
            1.0
        }
    }
}

/// Chunk size for the calibration pass (bounds the ctx plane size; the
/// recorded ranges are chunk-order independent since min/max commute).
const CALIB_CHUNK: usize = 32;

/// A calibrated quantization recipe for one model: the per-tensor
/// activation scale at every op boundary of the f32 pipeline, plus the
/// per-sample input shape it was calibrated with.
///
/// Per-channel **weight** scales are not stored here — they derive from
/// the weights themselves when [`crate::Network::freeze_int8`] quantizes
/// each layer.
///
/// ```
/// use deepcsi_nn::{Dense, Network, QuantSpec, Selu, Tensor};
///
/// let mut net = Network::new();
/// net.push(Dense::new(4, 8, 1));
/// net.push(Selu::new());
/// net.push(Dense::new(8, 2, 2));
/// let sample: Vec<Tensor> = (0..8)
///     .map(|s| Tensor::from_vec(vec![0.1 * s as f32; 4], vec![4]))
///     .collect();
/// let spec = QuantSpec::calibrate(&net.freeze(), &sample).unwrap();
/// let int8 = net.freeze_int8(&spec).unwrap();
/// let y = int8.infer(&sample[3], &mut int8.ctx());
/// assert_eq!(y.shape(), &[2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSpec {
    /// Observed range at each boundary: `ranges[0]` is the model input,
    /// `ranges[i + 1]` the output of f32 op `i`.
    ranges: Vec<ActRange>,
    /// Per-sample shape of the calibration inputs.
    input_shape: Vec<usize>,
    /// Calibration batch size.
    samples: usize,
}

impl QuantSpec {
    /// Calibrates activation scales by running `sample` through the f32
    /// `model` and recording min/max at every op boundary.
    ///
    /// # Errors
    ///
    /// [`QuantError::EmptySample`] when `sample` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the samples disagree in shape (the same contract as
    /// [`FrozenModel::infer_batch`]).
    pub fn calibrate(model: &FrozenModel, sample: &[Tensor]) -> Result<QuantSpec, QuantError> {
        if sample.is_empty() {
            return Err(QuantError::EmptySample);
        }
        let mut ranges = vec![ActRange::empty(); model.ops.len() + 1];
        let mut ctx = model.ctx();
        for chunk in sample.chunks(CALIB_CHUNK) {
            ctx.load(chunk);
            ranges[0].absorb(&ctx.cur);
            for (i, op) in model.ops.iter().enumerate() {
                op.apply(&mut ctx);
                ranges[i + 1].absorb(&ctx.cur);
            }
        }
        Ok(QuantSpec {
            ranges,
            input_shape: sample[0].shape().to_vec(),
            samples: sample.len(),
        })
    }

    /// Number of recorded boundaries (`ops + 1`).
    pub fn boundaries(&self) -> usize {
        self.ranges.len()
    }

    /// The observed range at boundary `i` (`0` = model input, `i + 1` =
    /// output of op `i`).
    pub fn range(&self, i: usize) -> ActRange {
        self.ranges[i]
    }

    /// The symmetric activation scale at boundary `i`.
    pub fn act_scale(&self, i: usize) -> f32 {
        self.ranges[i].scale()
    }

    /// Per-sample shape of the calibration inputs.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Calibration batch size.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

/// Assembles the int8 op chain for `layers` under `spec` (the body of
/// [`crate::Network::freeze_int8`]).
///
/// Walks the training layers tracking the numeric domain: integer
/// kernels enter the int8 domain (inserting a [`Quantize`] at the
/// calibrated boundary scale when coming from f32), scale-preserving ops
/// ride along inside it, and anything else forces a [`Dequantize`] back
/// to f32 first. The finished chain always ends in the f32 domain and is
/// shape-validated against the calibration input shape before it is
/// handed back.
pub(crate) fn assemble(
    layers: &[Box<dyn Layer>],
    spec: &QuantSpec,
) -> Result<(FrozenModel, Vec<QuantLayerInfo>), QuantError> {
    let expected = layers.len() + 1;
    if spec.boundaries() != expected {
        return Err(QuantError::BoundaryCount {
            expected,
            got: spec.boundaries(),
        });
    }
    let mut ops: Vec<Box<dyn crate::InferOp>> = Vec::new();
    let mut infos: Vec<QuantLayerInfo> = Vec::new();
    let mut int8 = false;
    // The scale actually carried by the int8 plane. Scale-preserving ops
    // (pool) pass it through, so it can lag the per-boundary calibrated
    // scale — integer kernels consume whatever the plane really holds.
    let mut cur_scale = 0.0f32;
    for (i, layer) in layers.iter().enumerate() {
        let in_scale = if int8 { cur_scale } else { spec.act_scale(i) };
        let out_scale = spec.act_scale(i + 1);
        match layer.freeze_int8(in_scale, out_scale) {
            Some(Int8Freeze::Requantized { op, mut info }) => {
                if !int8 {
                    ops.push(Box::new(Quantize { scale: in_scale }));
                    int8 = true;
                }
                info.layer = i;
                infos.push(info);
                ops.push(op);
                cur_scale = out_scale;
            }
            Some(Int8Freeze::ScalePreserving(op)) if int8 => ops.push(op),
            Some(Int8Freeze::ScalePreserving(_)) => ops.push(layer.freeze()),
            None => {
                if int8 {
                    ops.push(Box::new(Dequantize));
                    int8 = false;
                }
                ops.push(layer.freeze());
            }
        }
    }
    if int8 {
        ops.push(Box::new(Dequantize));
    }
    let model = FrozenModel::from_ops_checked(ops, &spec.input_shape)?;
    Ok((model, infos))
}

/// One layer's quantized operand set, shared by the conv and dense
/// `freeze_int8` implementations: i16-materialized int8-grid weights,
/// per-output requantize multipliers, bias in output-scale units, and
/// the freeze-time metadata.
pub(crate) struct QuantizedLayerParts {
    pub(crate) weight: Vec<i16>,
    pub(crate) m: Vec<f32>,
    pub(crate) bq: Vec<f32>,
    pub(crate) info: QuantLayerInfo,
}

/// Quantizes one layer's weights and bias for an integer kernel:
/// per-output-channel symmetric weight scales, the folded requantize
/// multiplier `s_in · s_w[o] / s_out`, and the bias rescaled to
/// output-scale units.
pub(crate) fn quantize_layer(
    name: &'static str,
    weight: &[f32],
    bias: &[f32],
    out_ch: usize,
    in_scale: f32,
    out_scale: f32,
) -> QuantizedLayerParts {
    let (q, wscales, weight_err_max) = quantize_weights_per_channel(weight, out_ch);
    QuantizedLayerParts {
        // i16-materialized int8 grid (the kernels' operand width).
        weight: q.iter().map(|&v| i16::from(v)).collect(),
        m: wscales.iter().map(|&s| in_scale * s / out_scale).collect(),
        bq: bias.iter().map(|&b| b / out_scale).collect(),
        info: QuantLayerInfo {
            layer: 0, // assembly fills in the network index
            name,
            weight_scale_max: wscales.iter().fold(0.0f32, |m, &s| m.max(s)),
            weight_err_max,
            in_scale,
            out_scale,
        },
    }
}

/// Per-output-channel symmetric quantization of one weight tensor:
/// returns `(q, scales, err_max)` where row `o` of `q` is
/// `round(w / scales[o])` clamped to `[-127, 127]` and `err_max` is the
/// largest absolute round-trip error across all channels.
pub(crate) fn quantize_weights_per_channel(
    weight: &[f32],
    out_ch: usize,
) -> (Vec<i8>, Vec<f32>, f32) {
    assert!(
        out_ch > 0 && weight.len().is_multiple_of(out_ch),
        "ragged weight rows"
    );
    let row = weight.len() / out_ch;
    let mut q = vec![0i8; weight.len()];
    let mut scales = vec![1.0f32; out_ch];
    let mut err_max = 0.0f32;
    for o in 0..out_ch {
        let ws = &weight[o * row..(o + 1) * row];
        let amax = ws.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        let s = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        scales[o] = s;
        for (qv, &w) in q[o * row..(o + 1) * row].iter_mut().zip(ws) {
            *qv = (w / s).round().clamp(-127.0, 127.0) as i8;
            err_max = err_max.max((w - f32::from(*qv) * s).abs());
        }
    }
    (q, scales, err_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Selu};
    use crate::network::Network;

    fn tiny_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(4, 6, 1));
        net.push(Selu::new());
        net.push(Dense::new(6, 3, 2));
        net
    }

    fn sample() -> Vec<Tensor> {
        (0..20)
            .map(|s| {
                Tensor::from_vec(
                    (0..4)
                        .map(|e| ((e * 5 + s) % 9) as f32 * 0.3 - 1.2)
                        .collect(),
                    vec![4],
                )
            })
            .collect()
    }

    #[test]
    fn calibrate_records_one_range_per_boundary() {
        let net = tiny_net();
        let spec = QuantSpec::calibrate(&net.freeze(), &sample()).unwrap();
        assert_eq!(spec.boundaries(), net.len() + 1);
        assert_eq!(spec.input_shape(), &[4]);
        assert_eq!(spec.samples(), 20);
        for i in 0..spec.boundaries() {
            let r = spec.range(i);
            assert!(r.min <= r.max, "boundary {i}: {r:?}");
            assert!(spec.act_scale(i) > 0.0);
        }
    }

    #[test]
    fn empty_sample_is_an_error() {
        let net = tiny_net();
        assert_eq!(
            QuantSpec::calibrate(&net.freeze(), &[]).unwrap_err(),
            QuantError::EmptySample
        );
    }

    #[test]
    fn spec_from_another_model_is_rejected() {
        let net = tiny_net();
        let spec = QuantSpec::calibrate(&net.freeze(), &sample()).unwrap();
        let mut longer = tiny_net();
        longer.push(Selu::new());
        match longer.freeze_int8(&spec).unwrap_err() {
            QuantError::BoundaryCount { expected, got } => {
                assert_eq!((expected, got), (5, 4));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn degenerate_range_scale_is_safe() {
        let r = ActRange { min: 0.0, max: 0.0 };
        assert_eq!(r.scale(), 1.0);
    }

    #[test]
    fn per_channel_weight_roundtrip_error_is_within_half_scale() {
        let weight: Vec<f32> = (0..24)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.37)
            .collect();
        let (q, scales, err_max) = quantize_weights_per_channel(&weight, 4);
        assert_eq!(q.len(), 24);
        assert_eq!(scales.len(), 4);
        // Exact-arithmetic bound is scale/2; allow a few float ulps from
        // the `w / s` and `q · s` roundings themselves.
        let bound = scales.iter().fold(0.0f32, |m, &s| m.max(s)) / 2.0 * (1.0 + 1e-5);
        assert!(err_max <= bound, "err {err_max} > scale/2 {bound}");
        // Per-channel: each row's max |w| maps exactly onto ±127.
        for (o, &s) in scales.iter().enumerate() {
            let row = &weight[o * 6..(o + 1) * 6];
            let amax = row.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
            assert!((s - amax / 127.0).abs() < 1e-12);
        }
    }
}
