//! Mini-batch training with data-parallel gradient computation.

use crate::loss::softmax_cross_entropy;
use crate::metrics::ConfusionMatrix;
use crate::network::Network;
use crate::optim::{Adam, Optimizer};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Worker threads for gradient computation (1 = serial).
    pub threads: usize,
    /// RNG seed (shuffling; layer RNGs are seeded at construction).
    pub seed: u64,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
    /// Clip the global gradient ℓ2 norm to this value (0 disables).
    pub grad_clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 64,
            learning_rate: 1e-3,
            threads: available_threads(),
            seed: 0,
            verbose: false,
            grad_clip: 0.0,
        }
    }
}

/// A sensible worker count for this machine (capped: gradient reduction
/// becomes the bottleneck beyond ~12 workers for these model sizes).
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 12)
}

/// Per-epoch training diagnostics returned by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation accuracy per epoch (empty when no validation set).
    pub val_accuracies: Vec<f64>,
}

impl TrainReport {
    /// The last epoch's validation accuracy, if a validation set was used.
    pub fn final_val_accuracy(&self) -> Option<f64> {
        self.val_accuracies.last().copied()
    }
}

/// Seeded mini-batch trainer with optional data-parallel gradients.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `(x, y)`; evaluates on `(val_x, val_y)` after each
    /// epoch when non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or the training set is empty.
    pub fn fit(
        &mut self,
        net: &mut Network,
        x: &[Tensor],
        y: &[usize],
        val_x: &[Tensor],
        val_y: &[usize],
    ) -> TrainReport {
        self.fit_with_provider(net, x, y, &mut |_| None, val_x, val_y)
    }

    /// Like [`Trainer::fit`], but asks `provider` for an alternate
    /// training set before each epoch — the channel-augmentation seam
    /// (the DeepCRF recipe: re-draw the propagation channel per epoch so
    /// the classifier cannot over-fit one channel realisation).
    ///
    /// `provider(epoch)` returning `None` trains that epoch on the base
    /// `(x, y)`; returning `Some((ax, ay))` substitutes the provided set
    /// for that epoch only. With a provider that always returns `None`
    /// this is bit-identical to [`Trainer::fit`].
    ///
    /// # Panics
    ///
    /// Panics if any epoch's set is empty or has mismatched lengths.
    pub fn fit_with_provider(
        &mut self,
        net: &mut Network,
        x: &[Tensor],
        y: &[usize],
        provider: &mut dyn FnMut(usize) -> Option<(Vec<Tensor>, Vec<usize>)>,
        val_x: &[Tensor],
        val_y: &[usize],
    ) -> TrainReport {
        assert_eq!(x.len(), y.len(), "one label per sample");
        assert!(!x.is_empty(), "empty training set");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x7124_1AA0);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut opt = Adam::new(self.config.learning_rate);
        let mut report = TrainReport {
            epoch_losses: Vec::with_capacity(self.config.epochs),
            val_accuracies: Vec::new(),
        };

        for epoch in 0..self.config.epochs {
            let epoch_set = provider(epoch);
            let (ex, ey): (&[Tensor], &[usize]) = match &epoch_set {
                Some((ax, ay)) => {
                    assert_eq!(ax.len(), ay.len(), "one label per sample");
                    assert!(!ax.is_empty(), "empty augmented epoch set");
                    (ax.as_slice(), ay.as_slice())
                }
                None => (x, y),
            };
            if order.len() != ex.len() {
                order = (0..ex.len()).collect();
            }
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut seen = 0usize;
            for batch in order.chunks(self.config.batch_size.max(1)) {
                net.zero_grads();
                let batch_loss = if self.config.threads <= 1 || batch.len() < 4 {
                    grad_batch_serial(net, ex, ey, batch)
                } else {
                    grad_batch_parallel(net, ex, ey, batch, self.config.threads)
                };
                if !batch_loss.is_finite() {
                    // NaN guard: skip the update, keep training.
                    continue;
                }
                net.scale_grads(1.0 / batch.len() as f32);
                if self.config.grad_clip > 0.0 {
                    clip_global_norm(net, self.config.grad_clip);
                }
                opt.step(net);
                loss_sum += batch_loss as f64;
                seen += batch.len();
            }
            let mean_loss = (loss_sum / seen.max(1) as f64) as f32;
            report.epoch_losses.push(mean_loss);
            if !val_x.is_empty() {
                let (acc, _) = evaluate(net, val_x, val_y);
                report.val_accuracies.push(acc);
                if self.config.verbose {
                    eprintln!(
                        "epoch {:>3}: loss {:.4}  val acc {:.2}%",
                        epoch + 1,
                        mean_loss,
                        acc * 100.0
                    );
                }
            } else if self.config.verbose {
                eprintln!("epoch {:>3}: loss {:.4}", epoch + 1, mean_loss);
            }
        }
        report
    }
}

/// Serial gradient accumulation over one batch; returns the summed loss.
fn grad_batch_serial(net: &mut Network, x: &[Tensor], y: &[usize], batch: &[usize]) -> f32 {
    let mut loss = 0.0f32;
    for &i in batch {
        let out = net.forward(&x[i], true);
        let (l, g) = softmax_cross_entropy(&out, y[i]);
        net.backward(&g);
        loss += l;
    }
    loss
}

/// Data-parallel gradient accumulation: each worker owns a network clone,
/// computes gradients over its shard, and the shard gradients are summed
/// into `net`.
fn grad_batch_parallel(
    net: &mut Network,
    x: &[Tensor],
    y: &[usize],
    batch: &[usize],
    threads: usize,
) -> f32 {
    let shard_size = batch.len().div_ceil(threads);
    let shards: Vec<&[usize]> = batch.chunks(shard_size).collect();
    let mut results: Vec<(Network, f32)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let mut worker = net.clone();
                scope.spawn(move |_| {
                    worker.zero_grads();
                    let loss = grad_batch_serial(&mut worker, x, y, shard);
                    (worker, loss)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    let mut total_loss = 0.0f32;
    for (mut worker, loss) in results.drain(..) {
        net.add_grads_from(&mut worker);
        total_loss += loss;
    }
    total_loss
}

/// Clips the global gradient ℓ2 norm.
fn clip_global_norm(net: &mut Network, max_norm: f32) {
    let norm_sq: f32 = net
        .params()
        .iter()
        .map(|p| p.g.iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = norm_sq.sqrt();
    if norm > max_norm {
        net.scale_grads(max_norm / norm);
    }
}

/// Predicts the class of one sample (inference mode).
pub fn predict(net: &Network, x: &Tensor) -> usize {
    net.infer(x).argmax()
}

/// Evaluates a network over a labelled set, returning overall accuracy and
/// the confusion matrix.
///
/// Freezes the network **once** and shares the one weight snapshot
/// across every evaluation thread (`FrozenModel` is `Sync`); each thread
/// owns only a scratch [`crate::InferCtx`].
///
/// # Panics
///
/// Panics if `x` and `y` lengths differ, the set is empty, or a label is
/// out of range of the network's output dimension.
pub fn evaluate(net: &Network, x: &[Tensor], y: &[usize]) -> (f64, ConfusionMatrix) {
    assert_eq!(x.len(), y.len(), "one label per sample");
    assert!(!x.is_empty(), "empty evaluation set");
    let frozen = net.freeze();
    let mut ctx = frozen.ctx();
    let n_classes = frozen.infer(&x[0], &mut ctx).len();
    let mut cm = ConfusionMatrix::new(n_classes);
    // Micro-batched inference: one weight pass per batch instead of one
    // per sample (same SIMD path the serving engine uses).
    const EVAL_BATCH: usize = 32;
    let threads = available_threads();
    if threads <= 1 || x.len() < 2 * EVAL_BATCH {
        for (chunk, ys) in x.chunks(EVAL_BATCH).zip(y.chunks(EVAL_BATCH)) {
            for (out, &yi) in frozen.infer_batch(chunk, &mut ctx).iter().zip(ys) {
                cm.add(yi, out.argmax());
            }
        }
    } else {
        let shard_size = x.len().div_ceil(threads).max(EVAL_BATCH);
        let shared = &frozen;
        let preds: Vec<Vec<(usize, usize)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = x
                .chunks(shard_size)
                .zip(y.chunks(shard_size))
                .map(|(xs, ys)| {
                    scope.spawn(move |_| {
                        let mut ctx = shared.ctx();
                        xs.chunks(EVAL_BATCH)
                            .zip(ys.chunks(EVAL_BATCH))
                            .flat_map(|(xc, yc)| {
                                shared
                                    .infer_batch(xc, &mut ctx)
                                    .into_iter()
                                    .zip(yc)
                                    .map(|(out, &yi)| (yi, out.argmax()))
                                    .collect::<Vec<_>>()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("eval worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
        for shard in preds {
            for (actual, pred) in shard {
                cm.add(actual, pred);
            }
        }
    }
    (cm.accuracy(), cm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Selu};

    /// Two well-separated Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            xs.push(Tensor::from_vec(
                vec![
                    cx + rng.gen_range(-0.3..0.3),
                    -cx + rng.gen_range(-0.3..0.3),
                ],
                vec![2],
            ));
            ys.push(class);
        }
        (xs, ys)
    }

    fn blob_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(2, 16, 1));
        net.push(Selu::new());
        net.push(Dense::new(16, 2, 2));
        net
    }

    #[test]
    fn learns_blobs_serial() {
        let (xs, ys) = blobs(64, 1);
        let mut net = blob_net();
        let mut t = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 0.01,
            threads: 1,
            seed: 3,
            ..TrainConfig::default()
        });
        let report = t.fit(&mut net, &xs, &ys, &xs, &ys);
        assert_eq!(report.epoch_losses.len(), 20);
        assert!(report.final_val_accuracy().unwrap() > 0.95);
        // Loss decreased overall.
        assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
    }

    #[test]
    fn parallel_matches_serial_loss_trajectory() {
        // Parallel gradient reduction must be numerically equivalent to
        // serial accumulation (same batches, same grads up to fp
        // reordering).
        let (xs, ys) = blobs(32, 5);
        let run = |threads: usize| {
            let mut net = blob_net();
            let mut t = Trainer::new(TrainConfig {
                epochs: 5,
                batch_size: 16,
                learning_rate: 0.01,
                threads,
                seed: 9,
                ..TrainConfig::default()
            });
            t.fit(&mut net, &xs, &ys, &[], &[]).epoch_losses
        };
        let serial = run(1);
        let parallel = run(4);
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert!((a - b).abs() < 1e-3, "serial {a} vs parallel {b}");
        }
    }

    #[test]
    fn evaluate_builds_confusion_matrix() {
        let (xs, ys) = blobs(40, 2);
        let net = blob_net();
        let (acc, cm) = evaluate(&net, &xs, &ys);
        assert_eq!(cm.total(), 40);
        assert!((0.0..=1.0).contains(&acc));
        assert!((cm.accuracy() - acc).abs() < 1e-12);
    }

    #[test]
    fn predict_is_consistent_with_evaluate() {
        let (xs, ys) = blobs(8, 3);
        let net = blob_net();
        let (_, cm) = evaluate(&net, &xs, &ys);
        let mut cm2 = ConfusionMatrix::new(2);
        for (x, &y) in xs.iter().zip(ys.iter()) {
            cm2.add(y, predict(&net, x));
        }
        assert_eq!(cm, cm2);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = blobs(32, 7);
        let run = || {
            let mut net = blob_net();
            let mut t = Trainer::new(TrainConfig {
                epochs: 3,
                batch_size: 8,
                learning_rate: 0.01,
                threads: 1,
                seed: 42,
                ..TrainConfig::default()
            });
            t.fit(&mut net, &xs, &ys, &[], &[]).epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn none_provider_is_bit_identical_to_fit() {
        let (xs, ys) = blobs(32, 7);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            learning_rate: 0.01,
            threads: 1,
            seed: 42,
            ..TrainConfig::default()
        };
        let mut net_a = blob_net();
        let plain = Trainer::new(cfg).fit(&mut net_a, &xs, &ys, &[], &[]);
        let mut net_b = blob_net();
        let via_provider =
            Trainer::new(cfg).fit_with_provider(&mut net_b, &xs, &ys, &mut |_| None, &[], &[]);
        assert_eq!(plain.epoch_losses, via_provider.epoch_losses);
        assert_eq!(net_a.save_weights(), net_b.save_weights());
    }

    #[test]
    fn provider_substitutes_per_epoch_sets() {
        let (xs, ys) = blobs(32, 7);
        let mut epochs_asked = Vec::new();
        let mut net = blob_net();
        let report = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 8,
            learning_rate: 0.01,
            threads: 1,
            seed: 42,
            ..TrainConfig::default()
        })
        .fit_with_provider(
            &mut net,
            &xs,
            &ys,
            &mut |epoch| {
                epochs_asked.push(epoch);
                // Odd epochs train on a re-drawn (different-seed) set.
                if epoch % 2 == 1 {
                    Some(blobs(32, 100 + epoch as u64))
                } else {
                    None
                }
            },
            &xs,
            &ys,
        );
        assert_eq!(epochs_asked, vec![0, 1, 2, 3]);
        assert_eq!(report.epoch_losses.len(), 4);
        // Augmented data is drawn from the same distribution, so the
        // classifier still learns the task.
        assert!(report.final_val_accuracy().unwrap() > 0.9);
    }

    #[test]
    fn grad_clip_limits_update_magnitude() {
        let (xs, ys) = blobs(16, 11);
        let mut net = blob_net();
        let mut t = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 16,
            learning_rate: 0.01,
            threads: 1,
            seed: 1,
            grad_clip: 1e-6, // absurdly tight: training barely moves
            ..TrainConfig::default()
        });
        let w_before = net.save_weights();
        t.fit(&mut net, &xs, &ys, &[], &[]);
        let w_after = net.save_weights();
        // Adam normalises step size, but the clipped gradient keeps the
        // moments tiny relative to unclipped training.
        let delta: f32 = w_before
            .iter()
            .flatten()
            .zip(w_after.iter().flatten())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let mut net = blob_net();
        let mut t = Trainer::new(TrainConfig::default());
        let _ = t.fit(&mut net, &[], &[], &[], &[]);
    }
}
