//! The layer abstraction.
//!
//! Training and inference are deliberately **separate traits**: [`Layer`]
//! is the training-side surface (`forward` caches activations, `backward`
//! consumes them, dropout draws from an RNG — all `&mut self`), while
//! inference lives on [`crate::InferOp`], produced by [`Layer::freeze`],
//! which takes `&self` and keeps every scratch buffer in the caller's
//! [`crate::InferCtx`]. That split is what lets a frozen model be
//! `Send + Sync` and shared across serving workers without cloning
//! weights.

use crate::frozen::InferOp;
use crate::quant::Int8Freeze;
use crate::tensor::Tensor;

/// A mutable view over one parameter tensor and its gradient accumulator.
///
/// Layers expose their parameters through this so optimizers can update
/// them without knowing layer internals. Views are returned in a stable
/// order, which is what lets [`crate::Adam`] keep per-parameter moments
/// aligned across steps.
pub struct ParamView<'a> {
    /// The parameter values.
    pub w: &'a mut [f32],
    /// The accumulated gradient (same length as `w`).
    pub g: &'a mut [f32],
}

/// A differentiable layer (the training-side trait).
///
/// `forward` caches whatever it needs; `backward` consumes that cache,
/// accumulates parameter gradients internally and returns the gradient
/// with respect to the input. One `forward` must precede each `backward`.
/// Inference is *not* on this trait: [`Layer::freeze`] snapshots the
/// layer into an immutable [`crate::InferOp`] instead.
pub trait Layer: Send {
    /// Human-readable layer name.
    fn name(&self) -> &'static str;

    /// Computes the layer output. `train` enables stochastic behaviour
    /// (dropout).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad` (∂loss/∂output), returning ∂loss/∂input and
    /// **adding** parameter gradients to the internal accumulators.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Snapshots the layer's inference behaviour into an immutable
    /// `Send + Sync` op.
    ///
    /// The op must be element-wise **bit-equal** to [`Layer::forward`]
    /// with `train = false` — same accumulation order, same rounding —
    /// so frozen serving and training-time evaluation can never
    /// disagree. Parameters are copied once; later training steps on
    /// this layer do not affect already-frozen ops.
    fn freeze(&self) -> Box<dyn InferOp>;

    /// Serve-only: snapshots the layer into an int8 inference op for a
    /// quantized pipeline, given the calibrated activation scales at its
    /// input and output boundaries.
    ///
    /// Returns `None` (the default) when the layer has no integer
    /// kernel — [`crate::Network::freeze_int8`] then keeps the layer's
    /// f32 op and hops domains around it. Training semantics are
    /// untouched: like [`Layer::freeze`], this only *reads* the layer.
    fn freeze_int8(&self, in_scale: f32, out_scale: f32) -> Option<Int8Freeze> {
        let _ = (in_scale, out_scale);
        None
    }

    /// Mutable views of (parameters, gradients), in a stable order.
    fn params(&mut self) -> Vec<ParamView<'_>>;

    /// Clears the gradient accumulators.
    fn zero_grads(&mut self) {
        for p in self.params() {
            p.g.fill(0.0);
        }
    }

    /// Number of trainable scalars.
    fn num_params(&mut self) -> usize {
        self.params().iter().map(|p| p.w.len()).sum()
    }

    /// Clones the layer into a box (for data-parallel worker replicas).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
