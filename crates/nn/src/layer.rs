//! The layer abstraction.

use crate::batch::Batch;
use crate::tensor::Tensor;

/// A mutable view over one parameter tensor and its gradient accumulator.
///
/// Layers expose their parameters through this so optimizers can update
/// them without knowing layer internals. Views are returned in a stable
/// order, which is what lets [`crate::Adam`] keep per-parameter moments
/// aligned across steps.
pub struct ParamView<'a> {
    /// The parameter values.
    pub w: &'a mut [f32],
    /// The accumulated gradient (same length as `w`).
    pub g: &'a mut [f32],
}

/// A differentiable layer.
///
/// `forward` caches whatever it needs; `backward` consumes that cache,
/// accumulates parameter gradients internally and returns the gradient
/// with respect to the input. One `forward` must precede each `backward`.
pub trait Layer: Send {
    /// Human-readable layer name.
    fn name(&self) -> &'static str;

    /// Computes the layer output. `train` enables stochastic behaviour
    /// (dropout).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad` (∂loss/∂output), returning ∂loss/∂input and
    /// **adding** parameter gradients to the internal accumulators.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Batched immutable inference over batch-innermost planes.
    ///
    /// Semantically identical to calling [`Layer::forward`] with
    /// `train = false` on each sample — implementations keep the exact
    /// accumulation order of `forward` so results are bit-equal — but
    /// caches nothing, takes `&self`, and walks contiguous `b`-wide lane
    /// rows so the hot loops autovectorize across the batch.
    fn infer_batch(&self, x: &Batch) -> Batch;

    /// Mutable views of (parameters, gradients), in a stable order.
    fn params(&mut self) -> Vec<ParamView<'_>>;

    /// Clears the gradient accumulators.
    fn zero_grads(&mut self) {
        for p in self.params() {
            p.g.fill(0.0);
        }
    }

    /// Number of trainable scalars.
    fn num_params(&mut self) -> usize {
        self.params().iter().map(|p| p.w.len()).sum()
    }

    /// Clones the layer into a box (for data-parallel worker replicas).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
