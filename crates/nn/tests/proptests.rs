//! Property-based and 2-D-path tests for the deep-learning substrate.

use deepcsi_nn::{
    poly_exp, softmax_cross_entropy, AlphaDropout, Conv2d, Dense, Flatten, InferCtx, InferPool,
    Layer, MaxPool2d, Network, Selu, Sigmoid, SpatialAttention, Tensor, PAR_MIN_CHUNK,
};
use deepcsi_obs::Profiler;
use proptest::prelude::*;

fn tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(data, shape.clone()))
}

/// Finite-difference gradient check of ∂(Σ output)/∂input for any layer.
fn input_grad_check<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
    let y = layer.forward(x, true);
    let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape().to_vec());
    layer.zero_grads();
    let _ = layer.forward(x, true);
    let gx = layer.backward(&ones);
    let eps = 1e-2f32;
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let fp: f32 = layer.forward(&xp, false).as_slice().iter().sum();
        let fm: f32 = layer.forward(&xm, false).as_slice().iter().sum();
        let want = (fp - fm) / (2.0 * eps);
        let got = gx.as_slice()[i];
        assert!((want - got).abs() < tol, "grad[{i}]: fd {want} vs bp {got}");
    }
}

#[test]
fn conv2d_true_2d_kernel_forward_known_value() {
    // 3×3 kernel of ones on a 3×3 input of ones: center output = 9,
    // corners = 4 (same padding).
    let mut conv = Conv2d::new(1, 1, (3, 3), 0);
    for p in conv.params() {
        if p.w.len() == 9 {
            p.w.fill(1.0);
        } else {
            p.w.fill(0.0);
        }
    }
    let x = Tensor::from_vec(vec![1.0; 9], vec![1, 3, 3]);
    let y = conv.forward(&x, false);
    assert_eq!(y.at3(0, 1, 1), 9.0);
    assert_eq!(y.at3(0, 0, 0), 4.0);
    assert_eq!(y.at3(0, 0, 1), 6.0);
}

#[test]
fn conv2d_2d_kernel_gradient_check() {
    let mut conv = Conv2d::new(2, 2, (3, 3), 5);
    let x = Tensor::from_vec(
        (0..2 * 4 * 5)
            .map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.2)
            .collect(),
        vec![2, 4, 5],
    );
    input_grad_check(&mut conv, &x, 0.05);
}

#[test]
fn maxpool_2d_kernel() {
    let mut pool = MaxPool2d::new((2, 2));
    let x = Tensor::from_vec(
        vec![
            1.0, 2.0, 3.0, 4.0, // row 0
            5.0, 6.0, 7.0, 8.0, // row 1
        ],
        vec![1, 2, 4],
    );
    let y = pool.forward(&x, false);
    assert_eq!(y.shape(), &[1, 1, 2]);
    assert_eq!(y.as_slice(), &[6.0, 8.0]);
    // Backward routes to the winners.
    let g = pool.backward(&Tensor::from_vec(vec![1.0, 2.0], vec![1, 1, 2]));
    assert_eq!(g.at3(0, 1, 1), 1.0);
    assert_eq!(g.at3(0, 1, 3), 2.0);
}

#[test]
fn attention_two_row_input_gradient_check() {
    let mut att = SpatialAttention::new(3, 9);
    let x = Tensor::from_vec(
        (0..3 * 2 * 5)
            .map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.15)
            .collect(),
        vec![3, 2, 5],
    );
    input_grad_check(&mut att, &x, 0.05);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn network_forward_is_deterministic_in_eval_mode(x in tensor(vec![2, 1, 16])) {
        let mut net = Network::new();
        net.push(Conv2d::new(2, 4, (1, 5), 1));
        net.push(Selu::new());
        net.push(MaxPool2d::new((1, 2)));
        net.push(SpatialAttention::new(3, 2));
        net.push(Flatten::new());
        net.push(Dense::new(32, 3, 3));
        let a = net.forward(&x, false);
        let b = net.forward(&x, false);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert!(a.is_finite());
    }

    #[test]
    fn selu_preserves_sign_of_positive_inputs(x in tensor(vec![8])) {
        let mut s = Selu::new();
        let y = s.forward(&x, false);
        for (xi, yi) in x.as_slice().iter().zip(y.as_slice()) {
            if *xi > 0.0 {
                prop_assert!(*yi > 0.0);
            } else {
                prop_assert!(*yi <= 0.0);
            }
        }
    }

    #[test]
    fn sigmoid_outputs_are_probabilities(x in tensor(vec![12])) {
        let mut s = Sigmoid::new();
        let y = s.forward(&x, false);
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero(x in tensor(vec![10]), target in 0usize..10) {
        let (loss, grad) = softmax_cross_entropy(&x, target);
        prop_assert!(loss >= 0.0);
        let s: f32 = grad.as_slice().iter().sum();
        prop_assert!(s.abs() < 1e-4);
    }

    #[test]
    fn dropout_eval_mode_is_identity(x in tensor(vec![20]), rate in 0.0f32..0.9) {
        let mut d = AlphaDropout::new(rate, 3);
        let y = d.forward(&x, false);
        prop_assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn pooling_never_increases_max(x in tensor(vec![2, 1, 12])) {
        let mut pool = MaxPool2d::new((1, 3));
        let y = pool.forward(&x, false);
        let xmax = x.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let ymax = y.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(ymax <= xmax + 1e-7);
    }

    #[test]
    fn grad_reduction_is_linear(x in tensor(vec![4]), target in 0usize..2) {
        // grads(a) + grads(b) == add_grads_from result.
        let mut base = Network::new();
        base.push(Dense::new(4, 2, 11));
        let mut n1 = base.clone();
        let mut n2 = base.clone();
        n1.zero_grads();
        n2.zero_grads();
        let y1 = n1.forward(&x, true);
        let (_, g1) = softmax_cross_entropy(&y1, target);
        n1.backward(&g1);
        let y2 = n2.forward(&x, true);
        let (_, g2) = softmax_cross_entropy(&y2, target);
        n2.backward(&g2);
        let solo: Vec<f32> = n1.params().iter().flat_map(|p| p.g.to_vec()).collect();
        n1.add_grads_from(&mut n2);
        let merged: Vec<f32> = n1.params().iter().flat_map(|p| p.g.to_vec()).collect();
        for (s, m) in solo.iter().zip(merged.iter()) {
            prop_assert!((m - 2.0 * s).abs() < 1e-5, "merge not additive");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Network::forward_batch` must agree element-wise with sequential
    /// `forward` calls for every batch size — including sizes that are
    /// not a multiple of any SIMD width or micro-batch target.
    #[test]
    fn forward_batch_matches_sequential_forward(
        xs in proptest::collection::vec(tensor(vec![3, 1, 24]), 1..41),
    ) {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 6, (1, 5), 21));
        net.push(Selu::new());
        net.push(MaxPool2d::new((1, 2)));
        net.push(Conv2d::new(6, 4, (1, 3), 22));
        net.push(Selu::new());
        net.push(SpatialAttention::new(3, 23));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 12, 10, 24));
        net.push(Selu::new());
        net.push(AlphaDropout::new(0.4, 25)); // identity at inference
        net.push(Dense::new(10, 5, 26));

        let batched = net.forward_batch(&xs);
        prop_assert_eq!(batched.len(), xs.len());
        for (x, got) in xs.iter().zip(batched.iter()) {
            let want = net.forward(x, false);
            prop_assert_eq!(want.shape(), got.shape());
            for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
                prop_assert!(
                    (w - g).abs() <= 1e-6,
                    "batched inference diverged: {} vs {} (batch of {})",
                    w, g, xs.len()
                );
            }
        }
    }

    /// Single-sample `infer` is the batch-of-one special case and must be
    /// exactly `forward(x, false)`.
    #[test]
    fn infer_matches_forward(x in tensor(vec![2, 1, 16])) {
        let mut net = Network::new();
        net.push(Conv2d::new(2, 4, (1, 5), 31));
        net.push(Selu::new());
        net.push(MaxPool2d::new((1, 2)));
        net.push(SpatialAttention::new(3, 32));
        net.push(Flatten::new());
        net.push(Dense::new(32, 3, 33));
        let want = net.forward(&x, false);
        let got = net.infer(&x);
        prop_assert_eq!(want.as_slice(), got.as_slice());
    }

    /// The tentpole contract of the train/serve split:
    /// `FrozenModel::infer_batch` must be **bit-exact** against
    /// `Network::forward(x, false)` over ragged batch sizes, AND the
    /// thread-parallel lane split (`infer_batch_par` with 1, 2 or 4
    /// contexts) must never change a single bit — a serving verdict can
    /// never depend on `infer_threads`.
    #[test]
    fn frozen_infer_batch_is_bit_exact_across_batches_and_threads(
        // Up to 69 samples: enough full 16-wide lane blocks that 4
        // contexts genuinely split (threads = max(1, n/16)), while the
        // small sizes cover the no-spawn fallback and ragged tails.
        xs in proptest::collection::vec(tensor(vec![3, 1, 24]), 1..70),
    ) {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 6, (1, 5), 41));
        net.push(Selu::new());
        net.push(MaxPool2d::new((1, 2)));
        net.push(Conv2d::new(6, 4, (1, 3), 42));
        net.push(Selu::new());
        net.push(SpatialAttention::new(3, 43));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 12, 10, 44));
        net.push(Selu::new());
        net.push(AlphaDropout::new(0.4, 45)); // identity when frozen
        net.push(Dense::new(10, 5, 46));
        let frozen = net.freeze();

        let want: Vec<Tensor> = xs.iter().map(|x| net.forward(x, false)).collect();
        for threads in [1usize, 2, 4] {
            let mut ctxs: Vec<InferCtx> = (0..threads).map(|_| frozen.ctx()).collect();
            let got = frozen.infer_batch_par(&xs, &mut ctxs);
            prop_assert_eq!(got.len(), want.len());
            for (w, g) in want.iter().zip(&got) {
                prop_assert_eq!(w.shape(), g.shape());
                // Bit-exact: no tolerance.
                prop_assert!(
                    w.as_slice() == g.as_slice(),
                    "frozen inference diverged from forward (batch {}, threads {threads})",
                    xs.len()
                );
            }
        }
        // Reusing a warm context must not change results either.
        let mut ctx = frozen.ctx();
        let first = frozen.infer_batch(&xs, &mut ctx);
        let second = frozen.infer_batch(&xs, &mut ctx);
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// The polynomial `exp` both the forward and frozen paths share must
    /// stay within a small ULP budget of `f32::exp` everywhere in the
    /// normal-result range.
    /// Degenerate splits — more contexts than the batch has lane
    /// blocks, a batch of 1, lane counts that do not divide the batch —
    /// must never produce an empty partition (every sample classified
    /// exactly once), must stay bit-exact against the single-context
    /// path, and the per-lane profilers must account each sample
    /// exactly once (no double counting from a skewed split). The
    /// persistent [`InferPool`] inherits the identical guarantee: it
    /// shares the spawn path's partition function.
    #[test]
    fn degenerate_splits_never_drop_samples_or_skew_profilers(
        xs in proptest::collection::vec(tensor(vec![6]), 1..40),
        lanes in 1usize..9,
    ) {
        let mut net = Network::new();
        net.push(Dense::new(6, 4, 71));
        net.push(Selu::new());
        net.push(Dense::new(4, 3, 72));
        let frozen = net.freeze();
        let batch = xs.len();

        let mut one = frozen.ctx();
        let want = frozen.infer_batch(&xs, &mut one);

        // Spawn-per-call path, every lane armed with a profiler.
        let mut ctxs: Vec<InferCtx> = (0..lanes)
            .map(|_| {
                let mut ctx = frozen.ctx();
                ctx.set_profiler(Profiler::new());
                ctx
            })
            .collect();
        let got = frozen.infer_batch_par(&xs, &mut ctxs);
        prop_assert_eq!(got.len(), batch, "no partition may come up empty or dropped");
        for (w, g) in want.iter().zip(&got) {
            prop_assert!(w.as_slice() == g.as_slice(), "par split diverged");
        }
        // Each op processes every sample exactly once across the lanes
        // — an op's per-lane sample count summed over contexts must be
        // exactly the batch, however skewed the split.
        for op_index in 0..3 {
            let samples: u64 = ctxs
                .iter()
                .map(|ctx| {
                    ctx.profiler()
                        .and_then(|p| p.ops().get(op_index))
                        .map_or(0, |stat| stat.samples)
                })
                .sum();
            prop_assert_eq!(
                samples,
                batch as u64,
                "op {} accounted {} samples for batch {} over {} lanes",
                op_index, samples, batch, lanes
            );
        }

        // The persistent pool: same partition function, same contract.
        let mut pool = InferPool::new(lanes);
        pool.set_profilers((0..lanes).map(|_| Profiler::new()).collect());
        let got = pool.infer_batch(&frozen, &xs);
        prop_assert_eq!(got.len(), batch);
        for (w, g) in want.iter().zip(&got) {
            prop_assert!(w.as_slice() == g.as_slice(), "pool split diverged");
        }
        prop_assert!(pool.last_engaged() >= 1 && pool.last_engaged() <= lanes);
        prop_assert!(
            pool.last_engaged() <= batch.div_ceil(PAR_MIN_CHUNK).max(1),
            "a lane below one full lane block of work was engaged"
        );
        let table = pool.profile_table();
        prop_assert_eq!(table.len(), 3, "one merged row per op");
        for stat in &table {
            prop_assert_eq!(
                stat.samples,
                batch as u64,
                "pool op {} accounted {} samples for batch {}",
                &stat.name, stat.samples, batch
            );
        }
    }

    #[test]
    fn poly_exp_stays_within_ulp_budget(x in -87.0f32..88.0) {
        let got = poly_exp(x);
        let want = x.exp();
        prop_assert!(got.is_finite() && got > 0.0);
        let ulp = (i64::from(got.to_bits()) - i64::from(want.to_bits())).unsigned_abs();
        prop_assert!(ulp <= 8, "poly_exp({x}) = {got} vs {want}: {ulp} ULP");
    }
}
