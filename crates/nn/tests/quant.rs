//! Accuracy-parity pins for the int8 inference pipeline.
//!
//! The quantized path deliberately trades bit-equality for integer
//! arithmetic, so these tests pin what the trade is allowed to cost:
//!
//! * top-1 agreement with the f32 model ≥ 99% on trained networks over
//!   ragged batches 1..41 (aggregated across a property sweep of
//!   training seeds, batch sizes and eval draws),
//! * int8 outputs **bit-identical** across `infer_threads` ∈ {1, 2, 4}
//!   — quantization must not break the lane-split invariance the
//!   serving engine relies on,
//! * the requantize error of a layer exit bounded by half the
//!   activation scale (pinned exactly via an identity dense layer),
//! * mis-assembled pipelines failing at freeze time with
//!   [`deepcsi_nn::ShapeMismatch`], not at first inference.

use deepcsi_nn::{
    Conv2d, Dense, Flatten, InferCtx, MaxPool2d, Network, QuantError, QuantSpec, Selu, Tensor,
    TrainConfig, Trainer,
};
use proptest::prelude::*;
use proptest::run_property;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const CLASSES: usize = 3;
const IN_SHAPE: [usize; 3] = [2, 1, 12];
const IN_LEN: usize = 24;

/// Class prototypes: well-separated deterministic patterns.
fn prototype(class: usize) -> Vec<f32> {
    (0..IN_LEN)
        .map(|e| ((e * (class + 2) * 13 + class * 7) % 11) as f32 * 0.2 - 1.0)
        .collect()
}

/// A sample of `class`: prototype plus bounded noise.
fn sample_of(class: usize, rng: &mut StdRng) -> Tensor {
    let x: Vec<f32> = prototype(class)
        .iter()
        .map(|&p| p + rng.gen_range(-0.15f32..0.15))
        .collect();
    Tensor::from_vec(x, IN_SHAPE.to_vec())
}

/// Trains a small conv+dense classifier on the prototype blobs — a
/// "trained-ish" network with genuine decision margins, so top-1
/// agreement is a meaningful statistic rather than coin flips on
/// near-tied random logits.
fn trained_network(seed: u64) -> (Network, Vec<Tensor>) {
    let mut net = Network::new();
    net.push(Conv2d::new(2, 4, (1, 3), seed));
    net.push(Selu::new());
    net.push(MaxPool2d::new((1, 2)));
    net.push(Flatten::new());
    net.push(Dense::new(4 * 6, CLASSES, seed + 1));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A1);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for class in 0..CLASSES {
        for _ in 0..20 {
            xs.push(sample_of(class, &mut rng));
            ys.push(class);
        }
    }
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 12,
        learning_rate: 0.01,
        threads: 1,
        seed,
        ..TrainConfig::default()
    });
    trainer.fit(&mut net, &xs, &ys, &[], &[]);
    (net, xs)
}

/// The tentpole parity property: across training seeds, ragged batch
/// sizes 1..41 and fresh eval draws, the int8 model agrees with the f32
/// model's top-1 on ≥ 99% of samples in aggregate — and its outputs are
/// bit-identical whichever of {1, 2, 4} inference contexts split the
/// batch.
#[test]
fn int8_top1_agreement_is_at_least_99_percent() {
    // Trained models are cached per seed; the property then sweeps
    // (seed, batch size, eval draw) combinations.
    let mut cache: HashMap<u64, (Network, Vec<Tensor>, deepcsi_nn::FrozenModel)> = HashMap::new();
    let mut agree = 0u64;
    let mut total = 0u64;
    run_property(
        &ProptestConfig::with_cases(24),
        concat!(module_path!(), "::int8_top1_agreement"),
        |rng| {
            let seed = rng.gen_range(0u64..4);
            let n = rng.gen_range(1usize..41);
            let (net, calib, int8) = cache.entry(seed).or_insert_with(|| {
                let (net, calib) = trained_network(seed);
                let spec = QuantSpec::calibrate(&net.freeze(), &calib).expect("calibrate");
                let int8 = net.freeze_int8(&spec).expect("freeze_int8");
                (net, calib, int8)
            });
            let _ = calib;
            let frozen = net.freeze();
            let xs: Vec<Tensor> = (0..n)
                .map(|_| sample_of(rng.gen_range(0..CLASSES), rng))
                .collect();

            let mut ctx = frozen.ctx();
            let want = frozen.infer_batch(&xs, &mut ctx);
            let mut qctx = int8.ctx();
            let got = int8.infer_batch(&xs, &mut qctx);
            prop_assert_eq!(got.len(), want.len());
            for (w, g) in want.iter().zip(&got) {
                prop_assert_eq!(w.shape(), g.shape());
                prop_assert!(g.is_finite(), "int8 logits must stay finite");
                total += 1;
                if w.argmax() == g.argmax() {
                    agree += 1;
                }
            }
            // Lane-split invariance: the quantized model must stay
            // bit-identical under any thread split, like the f32 one.
            for threads in [2usize, 4] {
                let mut ctxs: Vec<InferCtx> = (0..threads).map(|_| int8.ctx()).collect();
                let par = int8.infer_batch_par(&xs, &mut ctxs);
                for (a, b) in got.iter().zip(&par) {
                    prop_assert!(
                        a.as_slice() == b.as_slice(),
                        "int8 outputs diverged at {threads} contexts (batch {})",
                        n
                    );
                }
            }
            Ok(())
        },
    );
    let rate = agree as f64 / total as f64;
    assert!(
        rate >= 0.99,
        "int8 top-1 agreement {rate:.4} < 0.99 ({agree}/{total})"
    );
}

/// Deterministic per-layer error bound: through an identity dense layer
/// the int8 pipeline computes exactly `s · round(x / s)` (the weights
/// quantize losslessly onto ±127), so the end-to-end error **is** the
/// requantize error at the layer exit — and must stay within half the
/// activation scale.
#[test]
fn requant_error_is_bounded_by_half_the_scale() {
    let dim = 8usize;
    let mut net = Network::new();
    let mut ident = Dense::new(dim, dim, 1);
    for (i, view) in deepcsi_nn::Layer::params(&mut ident)
        .into_iter()
        .enumerate()
    {
        view.w.fill(0.0);
        if i == 0 {
            for d in 0..dim {
                view.w[d * dim + d] = 1.0;
            }
        }
    }
    net.push(ident);

    let mut rng = StdRng::seed_from_u64(9);
    let sample: Vec<Tensor> = (0..64)
        .map(|_| {
            Tensor::from_vec(
                (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
                vec![dim],
            )
        })
        .collect();
    let spec = QuantSpec::calibrate(&net.freeze(), &sample).unwrap();
    let int8 = net.freeze_int8(&spec).unwrap();
    // Input and output boundaries see the same values → same scale.
    let scale = spec.act_scale(1);
    let mut ctx = int8.ctx();
    let mut worst = 0.0f32;
    for x in &sample {
        let y = int8.infer(x, &mut ctx);
        for (&xv, &yv) in x.as_slice().iter().zip(y.as_slice()) {
            worst = worst.max((xv - yv).abs());
        }
    }
    // Exact-arithmetic bound is scale/2; allow a few float ulps.
    let bound = scale / 2.0 * (1.0 + 1e-5);
    assert!(
        worst <= bound,
        "requant error {worst} exceeds scale/2 = {bound} (scale {scale})"
    );
    // The bound is tight-ish: the grid really is this coarse.
    assert!(worst >= scale * 0.25, "suspiciously small error {worst}");
}

/// A conv → pool → conv chain (no activation between) stays entirely in
/// the int8 domain: one quantize on entry, one dequantize at the end,
/// max-pool running on `i8` directly.
#[test]
fn integer_chain_crosses_pool_and_flatten_without_float_round_trips() {
    let mut net = Network::new();
    net.push(Conv2d::new(2, 4, (1, 3), 3));
    net.push(MaxPool2d::new((1, 2)));
    net.push(Conv2d::new(4, 3, (1, 3), 4));
    net.push(Flatten::new());
    net.push(Dense::new(3 * 6, 2, 5));
    let mut rng = StdRng::seed_from_u64(11);
    let sample: Vec<Tensor> = (0..32)
        .map(|_| {
            Tensor::from_vec(
                (0..IN_LEN).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                IN_SHAPE.to_vec(),
            )
        })
        .collect();
    let spec = QuantSpec::calibrate(&net.freeze(), &sample).unwrap();
    let int8 = net.freeze_int8(&spec).unwrap();
    let chain = format!("{int8:?}");
    assert_eq!(
        chain,
        "FrozenModel[quantize → int8_conv2d → int8_maxpool2d → int8_conv2d → flatten → \
         int8_dense → dequantize]",
        "unexpected op chain: {chain}"
    );
    // And it still computes something close to the f32 model.
    let frozen = net.freeze();
    let (mut ctx, mut qctx) = (frozen.ctx(), int8.ctx());
    for x in &sample {
        let w = frozen.infer(x, &mut ctx);
        let g = int8.infer(x, &mut qctx);
        assert!(g.is_finite());
        for (&wv, &gv) in w.as_slice().iter().zip(g.as_slice()) {
            assert!((wv - gv).abs() < 0.5, "int8 {gv} far from f32 {wv}");
        }
    }
}

/// A conv whose kernel width has no monomorphized int8 im2col stays on
/// its f32 op: the pipeline assembles (no panic at freeze time *or*
/// first inference) with that layer riding between the domain hops.
#[test]
fn unsupported_conv_width_falls_back_to_f32() {
    let mut net = Network::new();
    net.push(Conv2d::new(2, 3, (1, 13), 7)); // no int8 kernel for kw=13
    net.push(Flatten::new());
    net.push(Dense::new(3 * 12, 2, 8));
    let mut rng = StdRng::seed_from_u64(21);
    let sample: Vec<Tensor> = (0..16)
        .map(|_| {
            Tensor::from_vec(
                (0..IN_LEN).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                IN_SHAPE.to_vec(),
            )
        })
        .collect();
    let spec = QuantSpec::calibrate(&net.freeze(), &sample).unwrap();
    let int8 = net.freeze_int8(&spec).unwrap();
    let chain = format!("{int8:?}");
    assert!(
        chain.contains("conv2d") && !chain.contains("int8_conv2d"),
        "{chain}"
    );
    assert!(chain.contains("int8_dense"), "{chain}");
    // And it runs: the wide conv is served by the f32 kernel.
    let y = int8.infer(&sample[0], &mut int8.ctx());
    assert!(y.is_finite());
    assert_eq!(y.shape(), &[2]);
}

/// A spec calibrated against one architecture cannot quantize another:
/// the mis-assembly is reported at freeze time as a `ShapeMismatch`,
/// never as a panic inside a serving worker.
#[test]
fn wrong_calibration_fails_at_freeze_time() {
    let mut a = Network::new();
    a.push(Dense::new(4, 6, 1));
    a.push(Selu::new());
    a.push(Dense::new(6, 3, 2));
    let sample: Vec<Tensor> = (0..8)
        .map(|s| Tensor::from_vec(vec![0.1 * s as f32; 4], vec![4]))
        .collect();
    let spec = QuantSpec::calibrate(&a.freeze(), &sample).unwrap();

    // Same layer count, different input width.
    let mut b = Network::new();
    b.push(Dense::new(5, 6, 1));
    b.push(Selu::new());
    b.push(Dense::new(6, 3, 2));
    match b.freeze_int8(&spec).unwrap_err() {
        QuantError::Shape(err) => {
            assert_eq!(err.op_name, "int8_dense");
            assert_eq!(err.in_shape, vec![4]);
        }
        other => panic!("expected a shape mismatch, got {other:?}"),
    }
}
