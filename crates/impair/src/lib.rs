//! Per-device RF hardware-impairment models — the source of the radio
//! fingerprint.
//!
//! The paper's key intuition (§I) is that imperfections in the
//! transmitter's radio circuitry *percolate onto the beamforming feedback
//! matrix*. This crate models those imperfections physically. With
//! per-TX-chain responses `T = diag(T_m(k))` and per-RX-chain responses
//! `R = diag(R_n(k))`, the CFR the beamformee estimates is
//!
//! ```text
//! Ĥ_k = T(k) · H_k · R(k) · e^{jθ_offs,k} + noise,
//! θ_offs,k = θ_CFO − 2πk(τ_SFO + τ_PDD)/T + θ_PPO + θ_PA     (Eq. (9))
//! ```
//!
//! Because `Ĥ_kᵀ = R H_kᵀ T`, the right-singular-vector matrix fed back to
//! the beamformer becomes `T† Z` — the *relative inter-chain response* of
//! the transmitter is imprinted on `Ṽ`. Terms common to all TX chains
//! (CFO, PPO, SFO/PDD at a given tone) cancel in the Givens canonical
//! form; chain-dependent terms (group-delay mismatch, phase intercepts,
//! filter ripple, gain mismatch, I/Q imbalance, the per-chain π phase
//! ambiguity) survive. That asymmetry is exactly what DeepCSI exploits and
//! what the offset-cleaning baseline of Fig. 16 partially destroys.
//!
//! Every fingerprint is generated deterministically from a [`DeviceId`],
//! so "Compex module 3" is the same physical device across datasets —
//! mirroring the paper's module swaps on a fixed SBC/antenna platform.
//!
//! # Example
//!
//! ```
//! use deepcsi_impair::{DeviceId, ImpairmentProfile, LinkState, RadioFingerprint, apply_impairments};
//! use deepcsi_linalg::{C64, CMatrix};
//!
//! let profile = ImpairmentProfile::default();
//! let tx = RadioFingerprint::generate(DeviceId(3), 3, &profile);
//! let rx = RadioFingerprint::generate_rx(7, 2, &profile);
//! let tones: Vec<i32> = (-4..=4).filter(|&k| k != 0).collect();
//! let cfr: Vec<CMatrix> = tones.iter()
//!     .map(|_| CMatrix::from_fn(3, 2, |m, n| C64::new(1.0 + m as f64, n as f64)))
//!     .collect();
//! let mut link = LinkState::new(&tx, 99);
//! let impaired = apply_impairments(&cfr, &tones, &tx, &rx, &profile, &mut link);
//! assert_eq!(impaired.len(), cfr.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod chain;
mod fingerprint;
mod offsets;

pub use apply::apply_impairments;
pub use chain::ChainResponse;
pub use fingerprint::{DeviceId, ImpairmentProfile, RadioFingerprint};
pub use offsets::{LinkState, PacketOffsets};
