//! Application of hardware impairments to an ideal CFR snapshot.

use crate::fingerprint::{ImpairmentProfile, RadioFingerprint};
use crate::offsets::LinkState;
use deepcsi_linalg::{CMatrix, C64};
use deepcsi_phy::SYMBOL_PERIOD_S;

/// Sign of the LTF pilot product `x(−k)·x(k)` at tone `k`. The real VHT-LTF
/// sequence is a fixed ±1 pattern; a deterministic hash reproduces its
/// pseudo-random sign structure without carrying the full table.
fn ltf_mirror_sign(k: i32) -> f64 {
    let mut h = (k.unsigned_abs() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    if h & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Transforms an ideal CFR snapshot into what the beamformee actually
/// estimates from the NDP, applying in order:
///
/// 1. **TX chain responses** `T_m(k)` (with I/Q-imbalance gain ripple) —
///    the beamformer fingerprint that percolates into `Ṽ`.
/// 2. **RX chain responses** `R_n(k)` and RX I/Q image leakage — the
///    beamformee's own signature (the reason cross-beamformee transfer
///    fails in Fig. 11).
/// 3. **Eq. (9) phase offsets** (CFO/SFO/PDD/PPO common terms and the
///    per-chain PA ambiguity + phase noise).
/// 4. **Estimation noise** at the packet's SNR.
///
/// `tones` must be symmetric enough that a mirror tone `−k` is present for
/// the I/Q image term; where it is missing the image term is skipped.
///
/// # Panics
///
/// Panics if dimensions disagree (`cfr.len() != tones.len()`, chain counts
/// vs. matrix shape).
pub fn apply_impairments(
    cfr: &[CMatrix],
    tones: &[i32],
    tx: &RadioFingerprint,
    rx: &RadioFingerprint,
    profile: &ImpairmentProfile,
    link: &mut LinkState,
) -> Vec<CMatrix> {
    assert_eq!(cfr.len(), tones.len(), "one CFR matrix per tone");
    if cfr.is_empty() {
        return Vec::new();
    }
    let (m, n) = cfr[0].shape();
    assert_eq!(tx.num_chains(), m, "TX fingerprint chain count must be M");
    assert_eq!(rx.num_chains(), n, "RX fingerprint chain count must be N");

    let k_span = tones.iter().map(|k| k.abs()).max().unwrap_or(1);
    let packet = link.next_packet(
        profile.snr_db,
        profile.snr_jitter_db,
        profile.phase_noise_std_rad,
    );

    // Mirror-tone lookup for the I/Q image term.
    let pos_of = |k: i32| tones.binary_search(&k).ok();

    // Stage 1+2a: per-chain responses.
    let g: Vec<CMatrix> = cfr
        .iter()
        .zip(tones.iter())
        .map(|(h_k, &k)| {
            let s = ltf_mirror_sign(k);
            let t_resp: Vec<C64> = (0..m)
                .map(|mi| {
                    let (bre, bim) = tx.iq_beta(mi);
                    // TX I/Q imbalance folds into an effective per-tone
                    // gain (the image of an LTF tone lands back on a
                    // known ±1 symbol): T·(1 + β·s).
                    let iq = C64::new(1.0 + bre * s, bim * s);
                    tx.chain(mi).response(k, k_span) * iq
                })
                .collect();
            let r_resp: Vec<C64> = (0..n).map(|ni| rx.chain(ni).response(k, k_span)).collect();
            CMatrix::from_fn(m, n, |mi, ni| t_resp[mi] * h_k[(mi, ni)] * r_resp[ni])
        })
        .collect();

    // Stage 2b: RX I/Q image leakage mixes in conj(G(−k)).
    let mut out: Vec<CMatrix> = g
        .iter()
        .zip(tones.iter())
        .map(|(g_k, &k)| {
            let s = ltf_mirror_sign(k);
            match pos_of(-k) {
                Some(mp) => {
                    let mirror = &g[mp];
                    CMatrix::from_fn(m, n, |mi, ni| {
                        let (bre, bim) = rx.iq_beta(ni);
                        let beta = C64::new(bre, bim) * s;
                        g_k[(mi, ni)] + beta * mirror[(mi, ni)].conj()
                    })
                }
                None => g_k.clone(),
            }
        })
        .collect();

    // Stage 3: Eq. (9) offsets.
    let tau = packet.tau_sfo + packet.tau_pdd;
    for (h_k, &k) in out.iter_mut().zip(tones.iter()) {
        let common = C64::cis(
            packet.theta_cfo - std::f64::consts::TAU * k as f64 * tau / SYMBOL_PERIOD_S
                + packet.theta_ppo,
        );
        for mi in 0..m {
            let row_phase = common * C64::cis(packet.theta_pa[mi] + packet.phase_noise[mi]);
            for ni in 0..n {
                let v = h_k[(mi, ni)];
                h_k[(mi, ni)] = v * row_phase;
            }
        }
    }

    // Stage 4: estimation noise at the packet SNR, scaled to the
    // snapshot's rms amplitude.
    let energy: f64 = out.iter().map(|h_k| h_k.fro_norm().powi(2)).sum();
    let rms = (energy / (out.len() * m * n) as f64).sqrt();
    let sigma = rms * 10f64.powf(-packet.snr_db / 20.0);
    let per_component = sigma / std::f64::consts::SQRT_2;
    for h_k in out.iter_mut() {
        for mi in 0..m {
            for ni in 0..n {
                let noise = C64::new(
                    link.gaussian() * per_component,
                    link.gaussian() * per_component,
                );
                let v = h_k[(mi, ni)];
                h_k[(mi, ni)] = v + noise;
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::DeviceId;

    fn tones() -> Vec<i32> {
        (-16..=16).filter(|&k| k != 0).collect()
    }

    fn flat_cfr(m: usize, n: usize, count: usize) -> Vec<CMatrix> {
        (0..count)
            .map(|_| {
                CMatrix::from_fn(m, n, |mi, ni| {
                    C64::new(1.0 + mi as f64 * 0.1, ni as f64 * 0.1)
                })
            })
            .collect()
    }

    fn profile_noiseless() -> ImpairmentProfile {
        ImpairmentProfile {
            snr_db: 200.0,
            snr_jitter_db: 0.0,
            phase_noise_std_rad: 0.0,
            ..ImpairmentProfile::default()
        }
    }

    #[test]
    fn shape_is_preserved() {
        let p = ImpairmentProfile::default();
        let tx = RadioFingerprint::generate(DeviceId(0), 3, &p);
        let rx = RadioFingerprint::generate_rx(1, 2, &p);
        let t = tones();
        let cfr = flat_cfr(3, 2, t.len());
        let mut link = LinkState::new(&tx, 0);
        let out = apply_impairments(&cfr, &t, &tx, &rx, &p, &mut link);
        assert_eq!(out.len(), cfr.len());
        for h in &out {
            assert_eq!(h.shape(), (3, 2));
            assert!(h.is_finite());
        }
    }

    #[test]
    fn ideal_radios_and_infinite_snr_preserve_subspace() {
        // With ideal radios the only change is the (k-common) Eq. (9)
        // scalar phases, which leave per-tone singular values untouched.
        let p = profile_noiseless();
        let tx = RadioFingerprint::ideal(3);
        let rx = RadioFingerprint::ideal(2);
        let t = tones();
        let cfr = flat_cfr(3, 2, t.len());
        let mut link = LinkState::new(&tx, 0);
        let out = apply_impairments(&cfr, &t, &tx, &rx, &p, &mut link);
        for (a, b) in cfr.iter().zip(out.iter()) {
            // PA ambiguity may flip row signs; compare magnitudes.
            for mi in 0..3 {
                for ni in 0..2 {
                    assert!(
                        (a[(mi, ni)].abs() - b[(mi, ni)].abs()).abs() < 1e-9,
                        "magnitude changed"
                    );
                }
            }
        }
    }

    #[test]
    fn different_devices_produce_different_estimates() {
        let p = profile_noiseless();
        let rx = RadioFingerprint::generate_rx(1, 2, &p);
        let t = tones();
        let cfr = flat_cfr(3, 2, t.len());
        let tx_a = RadioFingerprint::generate(DeviceId(0), 3, &p);
        let tx_b = RadioFingerprint::generate(DeviceId(1), 3, &p);
        let mut la = LinkState::new(&tx_a, 0);
        let mut lb = LinkState::new(&tx_b, 0);
        let a = apply_impairments(&cfr, &t, &tx_a, &rx, &p, &mut la);
        let b = apply_impairments(&cfr, &t, &tx_b, &rx, &p, &mut lb);
        let diff: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.sub(y).fro_norm())
            .sum();
        assert!(diff > 0.1, "device fingerprints indistinguishable");
    }

    #[test]
    fn noise_scales_with_snr() {
        let t = tones();
        let cfr = flat_cfr(3, 2, t.len());
        let tx = RadioFingerprint::ideal(3);
        let rx = RadioFingerprint::ideal(2);
        let measure = |snr: f64| {
            let p = ImpairmentProfile {
                snr_db: snr,
                snr_jitter_db: 0.0,
                phase_noise_std_rad: 0.0,
                ..ImpairmentProfile::default()
            };
            // Two different noise realisations of the same packet stream
            // differ by ~2× the noise floor.
            let mut l1 = LinkState::new(&tx, 1);
            let mut l2 = LinkState::new(&tx, 2);
            let a = apply_impairments(&cfr, &t, &tx, &rx, &p, &mut l1);
            let b = apply_impairments(&cfr, &t, &tx, &rx, &p, &mut l2);
            // Strip the differing packet phases by comparing magnitudes.
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| {
                    (0..3)
                        .map(|mi| {
                            (0..2)
                                .map(|ni| (x[(mi, ni)].abs() - y[(mi, ni)].abs()).abs())
                                .sum::<f64>()
                        })
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        let noisy = measure(10.0);
        let clean = measure(40.0);
        assert!(
            noisy > 10.0 * clean,
            "SNR had no effect: noisy={noisy} clean={clean}"
        );
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let p = ImpairmentProfile::default();
        let tx = RadioFingerprint::ideal(3);
        let rx = RadioFingerprint::ideal(2);
        let mut link = LinkState::new(&tx, 0);
        let out = apply_impairments(&[], &[], &tx, &rx, &p, &mut link);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "TX fingerprint chain count")]
    fn wrong_chain_count_panics() {
        let p = ImpairmentProfile::default();
        let tx = RadioFingerprint::ideal(2); // should be 3
        let rx = RadioFingerprint::ideal(2);
        let t = tones();
        let cfr = flat_cfr(3, 2, t.len());
        let mut link = LinkState::new(&tx, 0);
        let _ = apply_impairments(&cfr, &t, &tx, &rx, &p, &mut link);
    }

    #[test]
    fn ltf_mirror_sign_is_symmetric_and_pm_one() {
        for k in 1..200 {
            let s = ltf_mirror_sign(k);
            assert!(s == 1.0 || s == -1.0);
            assert_eq!(s, ltf_mirror_sign(-k), "s(k) must equal s(−k)");
        }
        // Both signs occur (the pattern is not degenerate).
        let signs: std::collections::HashSet<i8> =
            (1..100).map(|k| ltf_mirror_sign(k) as i8).collect();
        assert_eq!(signs.len(), 2);
    }
}
