//! Whole-device fingerprints and their magnitude profile.

use crate::chain::ChainResponse;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Identifier of one of the interchangeable Wi-Fi modules (the paper's 10
/// Compex WLE1216v5-23 boards). Deterministically seeds the fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "module{}", self.0)
    }
}

/// Magnitude scales of the impairment model — the calibration knobs listed
/// in DESIGN.md §4. Defaults reflect typical consumer Wi-Fi front-ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpairmentProfile {
    /// Scales every device-distinguishing magnitude at once (1.0 =
    /// calibrated default). Used in ablations.
    pub fingerprint_strength: f64,
    /// Std-dev of per-chain flat gain mismatch \[dB\].
    pub gain_std_db: f64,
    /// Std-dev of per-chain group-delay mismatch \[s\].
    pub delay_std_s: f64,
    /// Std-dev of per-chain phase intercept \[rad\].
    pub phase_std_rad: f64,
    /// Peak per-chain amplitude ripple \[dB\].
    pub amp_ripple_db: f64,
    /// Peak per-chain phase ripple \[rad\].
    pub phase_ripple_rad: f64,
    /// Std-dev of I/Q amplitude imbalance (linear, ≈ dB/8.7).
    pub iq_gain_std: f64,
    /// Std-dev of I/Q phase skew \[rad\].
    pub iq_phase_std: f64,
    /// Device oscillator offset std \[ppm\] (CFO/SFO source).
    pub osc_ppm_std: f64,
    /// Mean CFR-estimation SNR at the beamformee \[dB\].
    pub snr_db: f64,
    /// Per-packet SNR jitter \[dB\].
    pub snr_jitter_db: f64,
    /// Per-packet, per-chain phase-noise std \[rad\].
    pub phase_noise_std_rad: f64,
    /// Probability that a TX chain's PLL π-ambiguity flips per trace
    /// (Eq. (9)'s θ_PA). Defaults to 0: a MU-MIMO beamformer self-
    /// calibrates its chains. Ablation knob for uncalibrated radios.
    pub pa_flip_prob: f64,
}

impl Default for ImpairmentProfile {
    fn default() -> Self {
        ImpairmentProfile {
            fingerprint_strength: 1.0,
            gain_std_db: 0.15,
            delay_std_s: 0.8e-9,
            phase_std_rad: 0.8,
            amp_ripple_db: 0.1,
            phase_ripple_rad: 0.03,
            iq_gain_std: 0.015,
            iq_phase_std: 0.02,
            osc_ppm_std: 4.0,
            snr_db: 20.0,
            snr_jitter_db: 1.5,
            phase_noise_std_rad: 0.02,
            pa_flip_prob: 0.0,
        }
    }
}

impl ImpairmentProfile {
    /// Returns a copy with all device-distinguishing magnitudes scaled by
    /// `strength` (SNR and per-packet nuisances unchanged).
    pub fn scaled(&self, strength: f64) -> Self {
        ImpairmentProfile {
            fingerprint_strength: strength,
            ..*self
        }
    }

    fn effective(&self) -> (f64, f64, f64, f64, f64, f64, f64) {
        let s = self.fingerprint_strength;
        (
            self.gain_std_db * s,
            self.delay_std_s * s,
            self.phase_std_rad * s,
            self.amp_ripple_db * s,
            self.phase_ripple_rad * s,
            self.iq_gain_std * s,
            self.iq_phase_std * s,
        )
    }
}

/// The stable hardware signature of one radio: per-chain frequency
/// responses, per-chain I/Q imbalance and the oscillator offset.
///
/// Used for both beamformers (TX chains, [`RadioFingerprint::generate`])
/// and beamformees (RX chains, [`RadioFingerprint::generate_rx`]); the
/// seeds are domain-separated so "module 3" the transmitter and
/// "station 3" the receiver are unrelated devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioFingerprint {
    chains: Vec<ChainResponse>,
    /// Complex image-leakage coefficient β per chain: the I/Q-imbalanced
    /// signal is `α·x + β·conj(x_mirror)`.
    iq_beta: Vec<(f64, f64)>,
    cfo_ppm: f64,
    sfo_ppm: f64,
}

impl RadioFingerprint {
    /// Generates the transmitter fingerprint of `device` with `num_chains`
    /// RF chains.
    pub fn generate(device: DeviceId, num_chains: usize, profile: &ImpairmentProfile) -> Self {
        let seed = 0xDEE9_C510_0000_0000u64 ^ (device.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::generate_seeded(seed, num_chains, profile)
    }

    /// Generates a receiver (beamformee) fingerprint from a station seed.
    pub fn generate_rx(station_seed: u64, num_chains: usize, profile: &ImpairmentProfile) -> Self {
        let seed = 0xBEA4_F0EE_0000_0000u64 ^ station_seed.wrapping_mul(0xD1B5_4A32_D192_ED03);
        Self::generate_seeded(seed, num_chains, profile)
    }

    /// An ideal radio (no impairments) — useful as a control in tests and
    /// ablations.
    pub fn ideal(num_chains: usize) -> Self {
        RadioFingerprint {
            chains: (0..num_chains).map(|_| ChainResponse::ideal()).collect(),
            iq_beta: vec![(0.0, 0.0); num_chains],
            cfo_ppm: 0.0,
            sfo_ppm: 0.0,
        }
    }

    fn generate_seeded(seed: u64, num_chains: usize, profile: &ImpairmentProfile) -> Self {
        assert!(num_chains > 0, "a radio needs at least one chain");
        let mut rng = StdRng::seed_from_u64(seed);
        let (gain, delay, phase, amp_r, phase_r, iq_g, iq_p) = profile.effective();
        let chains = (0..num_chains)
            .map(|_| ChainResponse::generate(&mut rng, gain, delay, phase, amp_r, phase_r))
            .collect();
        let iq_beta = (0..num_chains)
            .map(|_| {
                // β ≈ (g − jθ)/2 for gain imbalance g and phase skew θ.
                let g: f64 = rng.gen_range(-1.0..1.0) * iq_g;
                let th: f64 = rng.gen_range(-1.0..1.0) * iq_p;
                (g / 2.0, -th / 2.0)
            })
            .collect();
        let ppm = profile.osc_ppm_std;
        RadioFingerprint {
            chains,
            iq_beta,
            cfo_ppm: rng.gen_range(-1.0..1.0) * ppm,
            sfo_ppm: rng.gen_range(-1.0..1.0) * ppm,
        }
    }

    /// A multi-day re-sample of this fingerprint: every chain picks up
    /// small temperature/aging offsets ([`ChainResponse::drifted`]) and
    /// the oscillator wanders a fraction of a ppm. Deterministic per
    /// `(fingerprint, day)`: day 0 with `scale` 0 is the identity
    /// re-seed, and the same day always produces the same aged radio —
    /// so a "day 3" serve set can be regenerated exactly.
    pub fn drifted(&self, day: u32, scale: f64) -> Self {
        if day == 0 && scale == 0.0 {
            return self.clone();
        }
        // Seed from the device's own stable randomness (its first
        // chain's parameters) plus the day, so distinct devices drift
        // independently and the same device re-drifts identically.
        let mut h = 0xD21F_7A6E_0000_0000u64 ^ (day as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= self.cfo_ppm.to_bits().wrapping_mul(0x100_0000_01B3);
        h ^= self.sfo_ppm.to_bits().rotate_left(17);
        let mut rng = StdRng::seed_from_u64(h);
        let chains = self
            .chains
            .iter()
            .map(|c| c.drifted(&mut rng, scale))
            .collect();
        let iq_beta = self
            .iq_beta
            .iter()
            .map(|&(re, im)| {
                (
                    re + rng.gen_range(-1.0..1.0) * scale * 0.002,
                    im + rng.gen_range(-1.0..1.0) * scale * 0.002,
                )
            })
            .collect();
        RadioFingerprint {
            chains,
            iq_beta,
            cfo_ppm: self.cfo_ppm + rng.gen_range(-1.0..1.0) * scale * 0.5,
            sfo_ppm: self.sfo_ppm + rng.gen_range(-1.0..1.0) * scale * 0.5,
        }
    }

    /// Number of RF chains.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// The response of chain `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chain(&self, i: usize) -> &ChainResponse {
        &self.chains[i]
    }

    /// The I/Q image-leakage coefficient β of chain `i` as a (re, im)
    /// pair.
    pub fn iq_beta(&self, i: usize) -> (f64, f64) {
        self.iq_beta[i]
    }

    /// Device carrier-frequency offset \[ppm\].
    pub fn cfo_ppm(&self) -> f64 {
        self.cfo_ppm
    }

    /// Device sampling-frequency offset \[ppm\].
    pub fn sfo_ppm(&self) -> f64 {
        self.sfo_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_device_same_fingerprint() {
        let p = ImpairmentProfile::default();
        let a = RadioFingerprint::generate(DeviceId(3), 3, &p);
        let b = RadioFingerprint::generate(DeviceId(3), 3, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn different_devices_differ() {
        let p = ImpairmentProfile::default();
        let a = RadioFingerprint::generate(DeviceId(3), 3, &p);
        let b = RadioFingerprint::generate(DeviceId(4), 3, &p);
        assert_ne!(a, b);
    }

    #[test]
    fn tx_and_rx_seed_domains_are_separated() {
        let p = ImpairmentProfile::default();
        let tx = RadioFingerprint::generate(DeviceId(3), 2, &p);
        let rx = RadioFingerprint::generate_rx(3, 2, &p);
        assert_ne!(tx, rx);
    }

    #[test]
    fn ideal_radio_has_unity_chains() {
        let r = RadioFingerprint::ideal(3);
        assert_eq!(r.num_chains(), 3);
        for i in 0..3 {
            let resp = r.chain(i).response(17, 122);
            assert!((resp.re - 1.0).abs() < 1e-12 && resp.im.abs() < 1e-12);
            assert_eq!(r.iq_beta(i), (0.0, 0.0));
        }
        assert_eq!(r.cfo_ppm(), 0.0);
    }

    #[test]
    fn strength_zero_kills_chain_diversity() {
        let p = ImpairmentProfile::default().scaled(0.0);
        let fp = RadioFingerprint::generate(DeviceId(1), 3, &p);
        for i in 0..3 {
            let resp = fp.chain(i).response(50, 122);
            assert!((resp.abs() - 1.0).abs() < 1e-12);
            assert!(resp.arg().abs() < 1e-12);
        }
    }

    #[test]
    fn all_ten_modules_are_pairwise_distinct() {
        let p = ImpairmentProfile::default();
        let fps: Vec<_> = (0..10)
            .map(|i| RadioFingerprint::generate(DeviceId(i), 3, &p))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(fps[i], fps[j], "modules {i} and {j} collide");
            }
        }
    }

    #[test]
    fn cfo_within_profile_bound() {
        let p = ImpairmentProfile::default();
        for i in 0..10 {
            let fp = RadioFingerprint::generate(DeviceId(i), 3, &p);
            assert!(fp.cfo_ppm().abs() <= p.osc_ppm_std);
            assert!(fp.sfo_ppm().abs() <= p.osc_ppm_std);
        }
    }

    #[test]
    fn drift_is_deterministic_per_day_and_distinct_across_days() {
        let p = ImpairmentProfile::default();
        let fp = RadioFingerprint::generate(DeviceId(2), 3, &p);
        assert_eq!(fp.drifted(3, 0.2), fp.drifted(3, 0.2));
        assert_ne!(fp.drifted(3, 0.2), fp.drifted(4, 0.2));
        // Day 0 at zero scale is the factory-fresh radio.
        assert_eq!(fp.drifted(0, 0.0), fp);
    }

    #[test]
    fn drift_perturbs_but_preserves_the_gross_fingerprint() {
        let p = ImpairmentProfile::default();
        let fp = RadioFingerprint::generate(DeviceId(5), 3, &p);
        let aged = fp.drifted(1, 0.1);
        assert_ne!(aged, fp);
        assert_eq!(aged.num_chains(), fp.num_chains());
        for i in 0..3 {
            for k in [-122i32, 0, 60, 122] {
                let a = fp.chain(i).response(k, 122);
                let b = aged.chain(i).response(k, 122);
                // A thermal cycle nudges the response, it does not
                // replace the device.
                assert!((a - b).abs() < 0.25, "chain {i} tone {k} moved too far");
            }
        }
        assert!((aged.cfo_ppm() - fp.cfo_ppm()).abs() <= 0.5 * 0.1 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn zero_chains_panics() {
        let _ = RadioFingerprint::generate(DeviceId(0), 0, &ImpairmentProfile::default());
    }
}
