//! Per-packet phase offsets (the paper's Eq. (9)) and per-link state.

use crate::fingerprint::RadioFingerprint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The phase-offset terms of one captured packet, per Eq. (9):
///
/// ```text
/// θ_offs,k,m,n = θ_CFO − 2πk(τ_SFO + τ_PDD)/T + θ_PPO + θ_PA,m
/// ```
///
/// `θ_PA` is the per-TX-chain phase ambiguity (multiples of π); the other
/// terms are common across antennas for a given tone and therefore cancel
/// in the Givens canonical form of `Ṽ` — they matter for CSI-domain
/// baselines, not for DeepCSI, which is exactly the paper's point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketOffsets {
    /// Residual carrier-frequency-offset phase \[rad\].
    pub theta_cfo: f64,
    /// Sampling-frequency-offset delay \[s\].
    pub tau_sfo: f64,
    /// Packet-detection delay \[s\].
    pub tau_pdd: f64,
    /// Phase-locked-loop offset \[rad\].
    pub theta_ppo: f64,
    /// Per-TX-chain phase ambiguity, each 0 or π \[rad\].
    pub theta_pa: Vec<f64>,
    /// Per-TX-chain small phase noise of this packet \[rad\].
    pub phase_noise: Vec<f64>,
    /// This packet's estimation SNR \[dB\].
    pub snr_db: f64,
}

/// Per-link, per-trace state: the RNG stream that produces per-packet
/// nuisance values and the device's oscillator anchors.
///
/// Create one `LinkState` per captured trace; call
/// [`LinkState::next_packet`] once per sounding.
#[derive(Debug)]
pub struct LinkState {
    rng: StdRng,
    pa: Vec<f64>,
    cfo_anchor_hz: f64,
    sfo_anchor_s_per_s: f64,
    packet_count: u64,
}

/// Carrier frequency used to convert ppm to Hz; the exact value only
/// scales the (cancelling) common CFO term.
const FC_HZ: f64 = 5.21e9;

impl LinkState {
    /// Initialises the state for one trace of transmissions from the
    /// device with fingerprint `tx`.
    ///
    /// By default `θ_PA = 0` for every chain: a DL MU-MIMO beamformer
    /// keeps its TX chains phase-coherent through self-calibration
    /// (otherwise its steering matrices would be useless), so the PLL
    /// π-ambiguity of Eq. (9) is resolved on the chains that matter here.
    /// Use [`LinkState::with_pa_flips`] to model an uncalibrated radio.
    pub fn new(tx: &RadioFingerprint, trace_seed: u64) -> Self {
        LinkState {
            rng: StdRng::seed_from_u64(0x0FF5_E750_u64 ^ trace_seed),
            pa: vec![0.0; tx.num_chains()],
            cfo_anchor_hz: tx.cfo_ppm() * 1e-6 * FC_HZ,
            sfo_anchor_s_per_s: tx.sfo_ppm() * 1e-6,
            packet_count: 0,
        }
    }

    /// Draws a per-trace π-ambiguity pattern: each chain independently
    /// flips with probability `prob` (an ablation knob; Eq. (9)'s
    /// `θ_PA`).
    pub fn with_pa_flips(mut self, prob: f64) -> Self {
        let pa = (0..self.pa.len())
            .map(|_| {
                if prob > 0.0 && self.rng.gen_bool(prob.clamp(0.0, 1.0)) {
                    std::f64::consts::PI
                } else {
                    0.0
                }
            })
            .collect();
        self.pa = pa;
        self
    }

    /// The per-trace PA pattern in effect.
    pub fn pa(&self) -> &[f64] {
        &self.pa
    }

    /// Number of packets drawn so far.
    pub fn packet_count(&self) -> u64 {
        self.packet_count
    }

    /// Draws the offsets of the next packet given the link's nominal SNR.
    pub fn next_packet(
        &mut self,
        snr_db: f64,
        snr_jitter_db: f64,
        phase_noise_std: f64,
    ) -> PacketOffsets {
        self.packet_count += 1;
        let n_chains = self.pa.len();
        let pa = self.pa.clone();
        // Residual CFO phase after receiver correction: the correction
        // leaves a fraction of a cycle, uniformly distributed.
        let theta_cfo = self
            .rng
            .gen_range(-std::f64::consts::PI..std::f64::consts::PI)
            * (self.cfo_anchor_hz.abs() / (self.cfo_anchor_hz.abs() + 1e4)).min(1.0);
        // SFO accumulates over the symbol; PDD is a few sample periods.
        let tau_sfo = self.sfo_anchor_s_per_s * 4e-6 * (1.0 + 0.1 * self.gaussian());
        let tau_pdd = 12.5e-9 * self.rng.gen_range(0.0..4.0);
        let theta_ppo = self
            .rng
            .gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let phase_noise = (0..n_chains)
            .map(|_| self.gaussian() * phase_noise_std)
            .collect();
        PacketOffsets {
            theta_cfo,
            tau_sfo,
            tau_pdd,
            theta_ppo,
            theta_pa: pa,
            phase_noise,
            snr_db: snr_db + self.gaussian() * snr_jitter_db,
        }
    }

    /// Gaussian sample (Box–Muller).
    pub(crate) fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::{DeviceId, ImpairmentProfile, RadioFingerprint};

    fn tx() -> RadioFingerprint {
        RadioFingerprint::generate(DeviceId(0), 3, &ImpairmentProfile::default())
    }

    #[test]
    fn pa_defaults_to_calibrated_chains() {
        let mut link = LinkState::new(&tx(), 1);
        for _ in 0..5 {
            let o = link.next_packet(28.0, 1.0, 0.02);
            assert!(o.theta_pa.iter().all(|&p| p == 0.0));
        }
        assert_eq!(link.packet_count(), 5);
    }

    #[test]
    fn pa_flips_are_stable_within_a_trace_and_zero_or_pi() {
        let mut link = LinkState::new(&tx(), 3).with_pa_flips(0.5);
        let first = link.next_packet(28.0, 1.0, 0.02).theta_pa;
        for pa in &first {
            assert!(*pa == 0.0 || (*pa - std::f64::consts::PI).abs() < 1e-15);
        }
        let second = link.next_packet(28.0, 1.0, 0.02).theta_pa;
        assert_eq!(first, second);
    }

    #[test]
    fn pa_flip_patterns_vary_across_traces() {
        let patterns: std::collections::HashSet<Vec<u8>> = (0..20)
            .map(|trace| {
                LinkState::new(&tx(), trace)
                    .with_pa_flips(0.5)
                    .pa()
                    .iter()
                    .map(|&p| (p > 1.0) as u8)
                    .collect()
            })
            .collect();
        assert!(patterns.len() > 1);
    }

    #[test]
    fn per_packet_values_vary() {
        let mut link = LinkState::new(&tx(), 5);
        let a = link.next_packet(28.0, 1.0, 0.02);
        let b = link.next_packet(28.0, 1.0, 0.02);
        assert_ne!(a.theta_ppo, b.theta_ppo);
        assert_ne!(a.tau_pdd, b.tau_pdd);
        assert_ne!(a.snr_db, b.snr_db);
    }

    #[test]
    fn offsets_are_physically_plausible() {
        let mut link = LinkState::new(&tx(), 5);
        for _ in 0..100 {
            let o = link.next_packet(28.0, 1.5, 0.02);
            assert!(o.tau_pdd >= 0.0 && o.tau_pdd < 51e-9, "PDD {}", o.tau_pdd);
            assert!(o.tau_sfo.abs() < 1e-9, "SFO delay {}", o.tau_sfo);
            assert!(o.theta_ppo.abs() <= std::f64::consts::PI);
            assert!((o.snr_db - 28.0).abs() < 10.0);
            assert_eq!(o.phase_noise.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_trace_seed() {
        let mut a = LinkState::new(&tx(), 9);
        let mut b = LinkState::new(&tx(), 9);
        assert_eq!(a.next_packet(28.0, 1.0, 0.0), b.next_packet(28.0, 1.0, 0.0));
    }
}
