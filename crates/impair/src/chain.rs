//! Frequency response of one RF chain (one antenna's analog path).

use deepcsi_linalg::C64;
use deepcsi_phy::SUBCARRIER_SPACING_HZ;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of ripple harmonics across the sounded band. Analog filters have
/// smooth, low-order responses; three harmonics capture the in-band
/// magnitude/phase ripple of a Wi-Fi front-end.
const NUM_HARMONICS: usize = 3;

/// The complex frequency response `T_m(k)` (or `R_n(k)`) of a single RF
/// chain, relative to the ideal flat response.
///
/// Components, all stable per device:
/// * a flat gain mismatch \[dB\],
/// * a group-delay mismatch \[s\] → phase slope across subcarriers,
/// * a phase intercept \[rad\],
/// * low-order Fourier amplitude/phase ripple (filter imperfections).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainResponse {
    gain_db: f64,
    delay_s: f64,
    phase_offset: f64,
    amp_ripple: Vec<(f64, f64)>,
    phase_ripple: Vec<(f64, f64)>,
}

impl ChainResponse {
    /// Draws a chain response with the given magnitude scales.
    ///
    /// * `gain_std_db` — std-dev of the flat gain mismatch.
    /// * `delay_std_s` — std-dev of the group-delay mismatch.
    /// * `phase_std` — std-dev of the phase intercept \[rad\].
    /// * `amp_ripple_db` / `phase_ripple_rad` — peak scale of the ripple.
    pub fn generate<R: Rng>(
        rng: &mut R,
        gain_std_db: f64,
        delay_std_s: f64,
        phase_std: f64,
        amp_ripple_db: f64,
        phase_ripple_rad: f64,
    ) -> Self {
        let mut pair = |scale: f64| {
            (
                rng.gen_range(-1.0..1.0) * scale,
                rng.gen_range(-1.0..1.0) * scale,
            )
        };
        let amp_ripple = (0..NUM_HARMONICS)
            .map(|h| pair(amp_ripple_db / (h + 1) as f64))
            .collect();
        let phase_ripple = (0..NUM_HARMONICS)
            .map(|h| pair(phase_ripple_rad / (h + 1) as f64))
            .collect();
        ChainResponse {
            gain_db: rng.gen_range(-1.0..1.0) * gain_std_db,
            delay_s: rng.gen_range(-1.0..1.0) * delay_std_s,
            phase_offset: rng.gen_range(-1.0..1.0) * phase_std,
            amp_ripple,
            phase_ripple,
        }
    }

    /// An ideal (identity) chain.
    pub fn ideal() -> Self {
        ChainResponse {
            gain_db: 0.0,
            delay_s: 0.0,
            phase_offset: 0.0,
            amp_ripple: vec![(0.0, 0.0); NUM_HARMONICS],
            phase_ripple: vec![(0.0, 0.0); NUM_HARMONICS],
        }
    }

    /// Complex response at subcarrier `k`, with `k_span` the one-sided
    /// tone span of the band (e.g. 122 for 80 MHz) used to normalise the
    /// ripple period.
    pub fn response(&self, k: i32, k_span: i32) -> C64 {
        let x = k as f64 / k_span.max(1) as f64; // in [−1, 1]
        let mut amp_db = self.gain_db;
        let mut phase = self.phase_offset
            - std::f64::consts::TAU * k as f64 * SUBCARRIER_SPACING_HZ * self.delay_s;
        for (h, ((ac, as_), (pc, ps))) in self
            .amp_ripple
            .iter()
            .zip(self.phase_ripple.iter())
            .enumerate()
        {
            let w = std::f64::consts::PI * (h + 1) as f64 * x;
            amp_db += ac * w.cos() + as_ * w.sin();
            phase += pc * w.cos() + ps * w.sin();
        }
        C64::from_polar(10f64.powf(amp_db / 20.0), phase)
    }

    /// Re-samples small temperature/aging offsets on top of this
    /// response: the multi-day drift of an analog front-end. `scale`
    /// sets the drift magnitude as a fraction of typical factory
    /// spreads — `0.1` is a day-to-day thermal cycle, `0.5` months of
    /// aging. The chain's gross character (its fingerprint) survives;
    /// the fine detail a classifier may have over-fitted does not.
    pub fn drifted<R: Rng>(&self, rng: &mut R, scale: f64) -> Self {
        let gain_db = self.gain_db + rng.gen_range(-1.0..1.0) * scale * 0.05;
        let delay_s = self.delay_s + rng.gen_range(-1.0..1.0) * scale * 0.05e-9;
        let phase_offset = self.phase_offset + rng.gen_range(-1.0..1.0) * scale * 0.1;
        let mut jitter =
            |base: f64| base + rng.gen_range(-1.0..1.0) * scale * base.abs().max(1e-12);
        let amp_ripple = self
            .amp_ripple
            .iter()
            .map(|&(c, s)| (jitter(c), jitter(s)))
            .collect();
        let phase_ripple = self
            .phase_ripple
            .iter()
            .map(|&(c, s)| (jitter(c), jitter(s)))
            .collect();
        ChainResponse {
            gain_db,
            delay_s,
            phase_offset,
            amp_ripple,
            phase_ripple,
        }
    }

    /// The group-delay mismatch of this chain \[s\].
    pub fn delay_s(&self) -> f64 {
        self.delay_s
    }

    /// The flat gain mismatch of this chain \[dB\].
    pub fn gain_db(&self) -> f64 {
        self.gain_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> ChainResponse {
        let mut rng = StdRng::seed_from_u64(1);
        ChainResponse::generate(&mut rng, 0.5, 0.5e-9, 0.8, 0.3, 0.05)
    }

    #[test]
    fn ideal_chain_is_unity() {
        let c = ChainResponse::ideal();
        for k in [-122, -50, 2, 122] {
            let r = c.response(k, 122);
            assert!((r - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn response_is_smooth_across_band() {
        let c = sample();
        let mut prev = c.response(-122, 122);
        for k in -121..=122 {
            let cur = c.response(k, 122);
            assert!((cur - prev).abs() < 0.15, "response jumped at tone {k}");
            prev = cur;
        }
    }

    #[test]
    fn magnitude_stays_near_unity() {
        let c = sample();
        for k in -122..=122 {
            let m = c.response(k, 122).abs();
            assert!((0.7..1.4).contains(&m), "|T({k})| = {m}");
        }
    }

    #[test]
    fn delay_produces_linear_phase_slope() {
        let mut rng = StdRng::seed_from_u64(2);
        // Pure delay chain: no ripple, no offset.
        let mut c = ChainResponse::generate(&mut rng, 0.0, 0.0, 0.0, 0.0, 0.0);
        c.delay_s = 1e-9;
        let p1 = c.response(10, 122).arg();
        let p2 = c.response(11, 122).arg();
        let slope = p2 - p1;
        let want = -std::f64::consts::TAU * SUBCARRIER_SPACING_HZ * 1e-9;
        assert!((slope - want).abs() < 1e-9, "slope {slope} vs {want}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = ChainResponse::generate(&mut r1, 0.5, 1e-9, 0.8, 0.3, 0.05);
        let b = ChainResponse::generate(&mut r2, 0.5, 1e-9, 0.8, 0.3, 0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(8);
        let a = ChainResponse::generate(&mut r1, 0.5, 1e-9, 0.8, 0.3, 0.05);
        let b = ChainResponse::generate(&mut r2, 0.5, 1e-9, 0.8, 0.3, 0.05);
        assert_ne!(a, b);
    }
}
