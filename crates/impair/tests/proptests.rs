//! Property-based tests for the impairment layer.
//!
//! Three families of properties:
//! * determinism — fingerprints and their drifted variants are pure
//!   functions of (seed, parameters);
//! * totality — `ChainResponse::response` stays finite/non-NaN over
//!   arbitrary `(k, k_span)` in range, including the `k_span = 0` guard;
//! * identity — `ideal()` chains are an exact multiplicative identity on
//!   CSI tensors, and ideal radios leave a CFR snapshot unchanged up to
//!   the per-tone common Eq. (9) phase (which cancels in the Givens
//!   canonical form downstream).

use deepcsi_impair::{
    apply_impairments, ChainResponse, DeviceId, ImpairmentProfile, LinkState, RadioFingerprint,
};
use deepcsi_linalg::{CMatrix, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A profile whose generation scales are drawn from realistic ranges.
fn profile_strategy() -> impl Strategy<Value = ImpairmentProfile> {
    (
        0.0f64..2.0,
        0.0f64..3e-9,
        0.0f64..1.5,
        0.0f64..0.5,
        0.0f64..0.1,
    )
        .prop_map(|(gain, delay, phase, amp, ripple)| ImpairmentProfile {
            gain_std_db: gain,
            delay_std_s: delay,
            phase_std_rad: phase,
            amp_ripple_db: amp,
            phase_ripple_rad: ripple,
            ..ImpairmentProfile::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_generation_is_deterministic_per_seed(
        seed in any::<u64>(),
        gain in 0.0f64..3.0,
        delay in 0.0f64..5e-9,
        phase in 0.0f64..3.0,
        amp in 0.0f64..1.0,
        ripple in 0.0f64..0.2,
    ) {
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let a = ChainResponse::generate(&mut r1, gain, delay, phase, amp, ripple);
        let b = ChainResponse::generate(&mut r2, gain, delay, phase, amp, ripple);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fingerprints_are_deterministic_per_device(
        device in any::<u32>(),
        chains in 1usize..4,
        profile in profile_strategy(),
    ) {
        let a = RadioFingerprint::generate(DeviceId(device), chains, &profile);
        let b = RadioFingerprint::generate(DeviceId(device), chains, &profile);
        prop_assert_eq!(&a, &b);
        // Drift is equally deterministic: same (day, scale) → same radio.
        prop_assert_eq!(a.drifted(5, 0.3), b.drifted(5, 0.3));
    }

    #[test]
    fn response_is_finite_over_arbitrary_tones(
        seed in any::<u64>(),
        gain in 0.0f64..3.0,
        delay in 0.0f64..5e-9,
        phase in 0.0f64..3.0,
        amp in 0.0f64..1.0,
        ripple in 0.0f64..0.2,
        k in -512i32..=512,
        k_span in 0i32..=512,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = ChainResponse::generate(&mut rng, gain, delay, phase, amp, ripple);
        let r = c.response(k, k_span);
        prop_assert!(r.re.is_finite() && r.im.is_finite(), "T({k}) = {r:?}");
        prop_assert!(r.abs() > 0.0, "response must never vanish");
    }

    #[test]
    fn ideal_chain_is_an_exact_identity_on_csi(
        k in -512i32..=512,
        k_span in 0i32..=512,
        re in -10.0f64..10.0,
        im in -10.0f64..10.0,
    ) {
        let r = ChainResponse::ideal().response(k, k_span);
        // Exactly (1, 0): multiplying any CSI value by it is bit-exact.
        prop_assert_eq!(r, C64::ONE);
        let v = C64::new(re, im);
        let w = v * r;
        prop_assert!(w.re == v.re && w.im == v.im, "{v:?} changed to {w:?}");
    }

    #[test]
    fn ideal_radios_are_identity_up_to_common_phase(
        seed in any::<u64>(),
        mags in proptest::collection::vec(0.2f64..1.0, 6 * 6),
        args in proptest::collection::vec(-3.1f64..3.1, 6 * 6),
    ) {
        // Ideal fingerprints at infinite SNR change a CFR snapshot only by
        // the per-tone common Eq. (9) phase (PPO/PDD are receiver-side
        // nuisances drawn per packet); that phase is common to every
        // matrix entry, so the CSI tensor is preserved up to a unit
        // scalar per tone — exactly the term the Givens form cancels.
        let tones: Vec<i32> = (-3..=3).filter(|&k| k != 0).collect();
        let cfr: Vec<CMatrix> = (0..tones.len())
            .map(|t| {
                CMatrix::from_fn(3, 2, |mi, ni| {
                    let i = t * 6 + mi * 2 + ni;
                    C64::from_polar(mags[i], args[i])
                })
            })
            .collect();
        let profile = ImpairmentProfile {
            snr_db: f64::INFINITY,
            snr_jitter_db: 0.0,
            phase_noise_std_rad: 0.0,
            ..ImpairmentProfile::default()
        };
        let tx = RadioFingerprint::ideal(3);
        let rx = RadioFingerprint::ideal(2);
        let mut link = LinkState::new(&tx, seed);
        let out = apply_impairments(&cfr, &tones, &tx, &rx, &profile, &mut link);
        for (a, b) in cfr.iter().zip(out.iter()) {
            let c = b[(0, 0)] / a[(0, 0)];
            prop_assert!((c.abs() - 1.0).abs() < 1e-12, "|c| = {}", c.abs());
            for mi in 0..3 {
                for ni in 0..2 {
                    let want = a[(mi, ni)] * c;
                    prop_assert!(
                        (b[(mi, ni)] - want).abs() < 1e-12,
                        "entry ({mi},{ni}) moved off the common phase"
                    );
                }
            }
        }
    }

    #[test]
    fn drift_preserves_the_gross_fingerprint(
        device in 0u32..64,
        day in 1u32..32,
        scale in 0.01f64..0.5,
    ) {
        let profile = ImpairmentProfile::default();
        let fp = RadioFingerprint::generate(DeviceId(device), 3, &profile);
        let aged = fp.drifted(day, scale);
        prop_assert_ne!(&aged, &fp, "drift must move the fingerprint");
        for i in 0..3 {
            for k in [-122, -61, 1, 61, 122] {
                let a = fp.chain(i).response(k, 122);
                let b = aged.chain(i).response(k, 122);
                prop_assert!(a.re.is_finite() && a.im.is_finite());
                prop_assert!((a - b).abs() < 1.0, "drift destroyed chain {i} at tone {k}");
            }
        }
    }
}
