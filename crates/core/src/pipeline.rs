//! The deployed observer: sniffed bytes → module identity.

use crate::model::ModelConfig;
use deepcsi_bfi::BeamformingFeedback;
use deepcsi_data::InputSpec;
use deepcsi_frame::{BeamformingReportFrame, FrameError, MacAddr};
use deepcsi_nn::{FrozenModel, InferCtx, Network, QuantError, QuantSpec, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use std::sync::OnceLock;

/// Numeric backend of a frozen serving snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// The f32 reference path — bit-equal to training-time
    /// `forward(x, false)`.
    #[default]
    F32,
    /// Post-training-quantized int8: integer conv/dense kernels,
    /// calibrated activation scales, approximately-equal predictions
    /// (see `deepcsi_nn::quant`).
    Int8,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Precision {
    /// The CLI-facing name (`"f32"` / `"int8"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!(
                "unknown precision {other:?} (expected f32 or int8)"
            )),
        }
    }
}

/// Errors from the authentication pipeline.
#[derive(Debug)]
pub enum AuthError {
    /// The captured bytes did not decode as a beamforming report.
    Frame(FrameError),
    /// Model persistence failed.
    Io(std::io::Error),
    /// Model (de)serialisation failed.
    Codec(bincode::Error),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Frame(e) => write!(f, "frame decode failed: {e}"),
            AuthError::Io(e) => write!(f, "model i/o failed: {e}"),
            AuthError::Codec(e) => write!(f, "model codec failed: {e}"),
        }
    }
}

impl std::error::Error for AuthError {}

impl From<FrameError> for AuthError {
    fn from(e: FrameError) -> Self {
        AuthError::Frame(e)
    }
}

impl From<std::io::Error> for AuthError {
    fn from(e: std::io::Error) -> Self {
        AuthError::Io(e)
    }
}

impl From<bincode::Error> for AuthError {
    fn from(e: bincode::Error) -> Self {
        AuthError::Codec(e)
    }
}

/// Serialised trained model: architecture + input spec + weights.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    model: ModelConfig,
    spec: InputSpec,
    input_shape: (usize, usize, usize),
    weights: Vec<Vec<f32>>,
}

/// A trained DeepCSI classifier deployed as a real-time authenticator
/// (the "DeepCSI Real-Time Inference" box of Fig. 1).
///
/// Feed it raw captured frames ([`Authenticator::classify_frame`]) or
/// already-parsed feedback ([`Authenticator::classify_feedback`]); it
/// returns the inferred module identity.
pub struct Authenticator {
    net: Network,
    spec: InputSpec,
    model: Option<ModelConfig>,
    input_shape: Option<(usize, usize, usize)>,
    /// Lazily built inference snapshot backing the one-shot
    /// `classify_*` calls, so they never re-copy the weights. Safe to
    /// cache: nothing in this type's API mutates `net`'s weights after
    /// construction.
    frozen: OnceLock<FrozenModel>,
}

impl Clone for Authenticator {
    fn clone(&self) -> Self {
        // The frozen cache is per-instance scratch; the clone rebuilds
        // its own on first use.
        Authenticator {
            net: self.net.clone(),
            spec: self.spec.clone(),
            model: self.model.clone(),
            input_shape: self.input_shape,
            frozen: OnceLock::new(),
        }
    }
}

impl Authenticator {
    /// Wraps a trained network and the input spec it was trained with.
    pub fn new(net: Network, spec: InputSpec) -> Self {
        Authenticator {
            net,
            spec,
            model: None,
            input_shape: None,
            frozen: OnceLock::new(),
        }
    }

    /// Like [`Authenticator::new`], also recording the architecture so
    /// the model can be saved with [`Authenticator::save`].
    pub fn with_config(
        net: Network,
        spec: InputSpec,
        model: ModelConfig,
        input_shape: (usize, usize, usize),
    ) -> Self {
        Authenticator {
            net,
            spec,
            model: Some(model),
            input_shape: Some(input_shape),
            frozen: OnceLock::new(),
        }
    }

    /// The cached inference snapshot (built on first use).
    fn frozen_model(&self) -> &FrozenModel {
        self.frozen.get_or_init(|| self.net.freeze())
    }

    /// The input spec this authenticator tensorises feedback with.
    pub fn spec(&self) -> &InputSpec {
        &self.spec
    }

    /// Classifies a parsed beamforming feedback, returning the predicted
    /// module id.
    ///
    /// Runs on a cached frozen snapshot, so repeated calls copy no
    /// weights (only a small scratch context is built per call — batch
    /// callers should [`Authenticator::freeze`] and reuse an
    /// [`InferCtx`] instead).
    pub fn classify_feedback(&self, fb: &BeamformingFeedback) -> usize {
        let x = self.spec.tensor(fb);
        let frozen = self.frozen_model();
        frozen.infer(&x, &mut frozen.ctx()).argmax()
    }

    /// The wrapped network (training-side access; the serving engine
    /// runs on [`Authenticator::freeze`]'s snapshot instead).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The recorded input shape `(channels, rows, cols)`, when this
    /// authenticator was built with [`Authenticator::with_config`] or
    /// loaded from disk. The serving engine uses it to pin the accepted
    /// tensor shape up front.
    pub fn input_shape(&self) -> Option<(usize, usize, usize)> {
        self.input_shape
    }

    /// Builds the input tensor for a parsed feedback without classifying
    /// it (the serving engine batches tensors before inference).
    pub fn tensorize(&self, fb: &BeamformingFeedback) -> Tensor {
        self.spec.tensor(fb)
    }

    /// Snapshots this authenticator into an immutable, `Send + Sync`
    /// [`FrozenAuthenticator`] for serving.
    ///
    /// The frozen model's predictions are bit-equal to this
    /// authenticator's (`Network::forward(x, false)` arithmetic); the
    /// weights are copied exactly once, so any number of worker threads
    /// can share one `Arc<FrozenAuthenticator>` with no per-worker
    /// clone.
    pub fn freeze(&self) -> FrozenAuthenticator {
        FrozenAuthenticator {
            model: self.net.freeze(),
            spec: self.spec.clone(),
            input_shape: self.input_shape,
            precision: Precision::F32,
        }
    }

    /// Snapshots this authenticator into a post-training-quantized
    /// **int8** serving snapshot (see
    /// [`FrozenAuthenticator::quantized`]). `calib` is the
    /// representative input batch the activation scales are calibrated
    /// on — typically a few hundred tensorized feedback reports from
    /// the training set.
    ///
    /// # Errors
    ///
    /// [`deepcsi_nn::QuantError`] when `calib` is empty or the
    /// quantized pipeline fails to assemble.
    pub fn freeze_int8(&self, calib: &[Tensor]) -> Result<FrozenAuthenticator, QuantError> {
        FrozenAuthenticator::quantized(self, calib)
    }

    /// Decodes a captured frame and classifies its feedback, returning
    /// the reporting beamformee's address and the predicted module id.
    ///
    /// # Errors
    ///
    /// [`AuthError::Frame`] when the bytes do not parse.
    pub fn classify_frame(&self, bytes: &[u8]) -> Result<(MacAddr, usize), AuthError> {
        let frame = BeamformingReportFrame::parse(bytes)?;
        let source = frame.source();
        let id = self.classify_feedback(frame.feedback());
        Ok((source, id))
    }

    /// Saves the trained model (requires construction via
    /// [`Authenticator::with_config`]).
    ///
    /// # Errors
    ///
    /// I/O or serialisation failures.
    ///
    /// # Panics
    ///
    /// Panics if the authenticator was built without a recorded
    /// architecture.
    pub fn save<P: AsRef<Path>>(&mut self, path: P) -> Result<(), AuthError> {
        let model = self.model.clone().expect("architecture not recorded");
        let input_shape = self.input_shape.expect("input shape not recorded");
        let saved = SavedModel {
            model,
            spec: self.spec.clone(),
            input_shape,
            weights: self.net.save_weights(),
        };
        let file = std::fs::File::create(path)?;
        bincode::serialize_into(std::io::BufWriter::new(file), &saved)?;
        Ok(())
    }

    /// Loads a model saved by [`Authenticator::save`].
    ///
    /// # Errors
    ///
    /// I/O or deserialisation failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, AuthError> {
        let file = std::fs::File::open(path)?;
        let saved: SavedModel = bincode::deserialize_from(std::io::BufReader::new(file))?;
        let mut net = saved.model.build(saved.input_shape);
        net.load_weights(&saved.weights);
        Ok(Authenticator {
            net,
            spec: saved.spec,
            model: Some(saved.model),
            input_shape: Some(saved.input_shape),
            frozen: OnceLock::new(),
        })
    }
}

/// An immutable, `Send + Sync` snapshot of a trained [`Authenticator`]:
/// the frozen classifier weights plus the input spec they were trained
/// with.
///
/// Produced by [`Authenticator::freeze`]. This is the type the serving
/// engine shares across its worker ring — one `Arc<FrozenAuthenticator>`
/// for the whole pool, each worker holding only its own scratch
/// [`InferCtx`]s. All inference is bit-equal to the source
/// authenticator's.
pub struct FrozenAuthenticator {
    model: FrozenModel,
    spec: InputSpec,
    input_shape: Option<(usize, usize, usize)>,
    precision: Precision,
}

impl FrozenAuthenticator {
    /// Builds a post-training-quantized **int8** snapshot of `auth`:
    /// activation scales are calibrated by running `calib` (a
    /// representative batch of input tensors, e.g.
    /// [`Authenticator::tensorize`]d training feedback) through the f32
    /// model, then the conv/dense layers are re-frozen onto integer
    /// kernels (`deepcsi_nn::quant`).
    ///
    /// Predictions are *approximately* equal to the f32 snapshot's —
    /// top-1 agreement is pinned ≥ 99% by the accuracy-parity suite —
    /// and, like f32, **bit-identical across any `infer_threads` lane
    /// split**, so the engine's thread-invariance contract holds at
    /// both precisions.
    ///
    /// # Errors
    ///
    /// [`QuantError::EmptySample`] for an empty calibration batch;
    /// [`QuantError::Shape`] when the assembled pipeline fails shape
    /// validation (mis-matched calibration).
    pub fn quantized(
        auth: &Authenticator,
        calib: &[Tensor],
    ) -> Result<FrozenAuthenticator, QuantError> {
        let spec = QuantSpec::calibrate(&auth.net.freeze(), calib)?;
        Ok(FrozenAuthenticator {
            model: auth.net.freeze_int8(&spec)?,
            spec: auth.spec.clone(),
            input_shape: auth.input_shape,
            precision: Precision::Int8,
        })
    }

    /// The input spec feedback is tensorised with.
    pub fn spec(&self) -> &InputSpec {
        &self.spec
    }

    /// The numeric backend this snapshot serves with.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The recorded input shape `(channels, rows, cols)`, when the
    /// source authenticator recorded one (see
    /// [`Authenticator::input_shape`]).
    pub fn input_shape(&self) -> Option<(usize, usize, usize)> {
        self.input_shape
    }

    /// The frozen classifier.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// A fresh per-worker scratch context.
    pub fn ctx(&self) -> InferCtx {
        self.model.ctx()
    }

    /// Builds the input tensor for a parsed feedback without classifying
    /// it (the serving engine batches tensors before inference).
    pub fn tensorize(&self, fb: &BeamformingFeedback) -> Tensor {
        self.spec.tensor(fb)
    }

    /// Classifies a parsed beamforming feedback, returning the predicted
    /// module id (bit-equal to [`Authenticator::classify_feedback`]).
    pub fn classify_feedback(&self, fb: &BeamformingFeedback, ctx: &mut InferCtx) -> usize {
        let x = self.spec.tensor(fb);
        self.model.infer(&x, ctx).argmax()
    }
}

impl From<&Authenticator> for FrozenAuthenticator {
    fn from(auth: &Authenticator) -> Self {
        auth.freeze()
    }
}

impl From<Authenticator> for FrozenAuthenticator {
    fn from(auth: Authenticator) -> Self {
        auth.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_data::{generate_trace, GenConfig, TraceKind, TraceSpec};
    use deepcsi_impair::DeviceId;

    fn tiny_trace() -> deepcsi_data::Trace {
        generate_trace(
            &GenConfig {
                snapshots_per_trace: 2,
                ..GenConfig::default()
            },
            &TraceSpec {
                module: DeviceId(0),
                beamformee: 1,
                n_rx: 2,
                rx_position: 3,
                kind: TraceKind::D1Static { position: 3 },
            },
        )
    }

    fn tiny_authenticator() -> (Authenticator, ModelConfig, InputSpec) {
        let spec = InputSpec::fast();
        let trace = tiny_trace();
        let probe = spec.tensor(&trace.snapshots[0]);
        let [c, h, w]: [usize; 3] = probe.shape().try_into().unwrap();
        let model = ModelConfig::fast(3, 9);
        let net = model.build((c, h, w));
        (
            Authenticator::with_config(net, spec.clone(), model.clone(), (c, h, w)),
            model,
            spec,
        )
    }

    #[test]
    fn classifies_feedback_and_frames_consistently() {
        let (auth, _, _) = tiny_authenticator();
        let trace = tiny_trace();
        let fb = &trace.snapshots[0];
        let direct = auth.classify_feedback(fb);
        assert!(direct < 3);
        // Through the frame path.
        let frame = deepcsi_frame::BeamformingReportFrame::new(
            MacAddr::station(100),
            MacAddr::station(1),
            MacAddr::station(100),
            3,
            fb.clone(),
        );
        let (src, id) = auth.classify_frame(&frame.encode()).unwrap();
        assert_eq!(src, MacAddr::station(1));
        assert_eq!(id, direct);
    }

    #[test]
    fn garbage_frame_is_an_error() {
        let (auth, _, _) = tiny_authenticator();
        let err = auth.classify_frame(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, AuthError::Frame(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn save_load_preserves_predictions() {
        let (mut auth, _, _) = tiny_authenticator();
        let trace = tiny_trace();
        let before: Vec<usize> = trace
            .snapshots
            .iter()
            .map(|fb| auth.classify_feedback(fb))
            .collect();
        let dir = std::env::temp_dir().join("deepcsi-auth-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        auth.save(&path).unwrap();
        let loaded = Authenticator::load(&path).unwrap();
        let after: Vec<usize> = trace
            .snapshots
            .iter()
            .map(|fb| loaded.classify_feedback(fb))
            .collect();
        assert_eq!(before, after);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frozen_authenticator_matches_source_predictions() {
        let (auth, _, _) = tiny_authenticator();
        let frozen = auth.freeze();
        let mut ctx = frozen.ctx();
        let trace = tiny_trace();
        for fb in &trace.snapshots {
            assert_eq!(
                auth.classify_feedback(fb),
                frozen.classify_feedback(fb, &mut ctx)
            );
        }
        assert_eq!(frozen.input_shape(), auth.input_shape());
    }

    #[test]
    fn load_missing_file_fails() {
        assert!(matches!(
            Authenticator::load("/nonexistent/model.bin"),
            Err(AuthError::Io(_))
        ));
    }

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("int8".parse::<Precision>().unwrap(), Precision::Int8);
        assert!("fp16".parse::<Precision>().is_err());
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::default(), Precision::F32);
    }

    #[test]
    fn quantized_snapshot_serves_the_same_interface() {
        let (auth, _, _) = tiny_authenticator();
        let trace = tiny_trace();
        let calib: Vec<Tensor> = trace
            .snapshots
            .iter()
            .map(|fb| auth.tensorize(fb))
            .collect();
        let frozen = auth.freeze();
        let int8 = FrozenAuthenticator::quantized(&auth, &calib).unwrap();
        assert_eq!(frozen.precision(), Precision::F32);
        assert_eq!(int8.precision(), Precision::Int8);
        assert_eq!(int8.input_shape(), auth.input_shape());
        let mut ctx = int8.ctx();
        for fb in &trace.snapshots {
            let id = int8.classify_feedback(fb, &mut ctx);
            assert!(id < 3);
        }
        // Empty calibration is rejected up front.
        assert!(FrozenAuthenticator::quantized(&auth, &[]).is_err());
    }
}
