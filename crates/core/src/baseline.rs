//! The Fig. 16 comparison baseline: learning from offset-cleaned Ṽ.
//!
//! §V ("DeepCSI performance compared with learning from a processed
//! input") applies the CSI sanitization algorithm of \[36\] to the
//! beamforming feedback before classification. The cleaner fits and
//! removes a constant + linear-in-k phase per Ṽ element series — exactly
//! the shape of the Eq. (9) offsets (CFO/PPO → intercept, SFO/PDD →
//! slope), but *also* the shape of the transmitter's per-chain phase
//! intercepts and group-delay mismatches. Those are fingerprint, not
//! nuisance: "the offsets introduced by the beamformer hardware
//! imperfections are strategic to reliably recognize the device, and any
//! offset cleaning may result in their partial removal".
//!
//! The cleaning itself lives in [`deepcsi_data::clean_phase_offsets`] (so
//! dataset splits can apply it in one pass); this module re-exports it
//! with helpers for the baseline experiment.

pub use deepcsi_data::clean_phase_offsets;

use deepcsi_data::InputSpec;

/// Returns the [`InputSpec`] of the offset-correction baseline: identical
/// to `spec` but with the \[36\] cleaner enabled.
pub fn cleaned_spec(spec: &InputSpec) -> InputSpec {
    InputSpec {
        offset_cleaning: true,
        ..spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_bfi::VSeries;
    use deepcsi_linalg::{CMatrix, C64};

    /// Builds a Ṽ-like series whose element (0,0) has a pure linear
    /// phase ramp.
    fn ramp_series(slope: f64, intercept: f64) -> VSeries {
        let subcarriers: Vec<i32> = (-8..8).collect();
        let v = subcarriers
            .iter()
            .map(|&k| {
                CMatrix::from_fn(2, 1, |r, _| {
                    if r == 0 {
                        C64::from_polar(0.7, slope * k as f64 + intercept)
                    } else {
                        C64::real(0.71) // canonical last row: real
                    }
                })
            })
            .collect();
        VSeries { subcarriers, v }
    }

    #[test]
    fn removes_linear_phase_exactly() {
        let mut s = ramp_series(0.21, 0.9);
        clean_phase_offsets(&mut s);
        for vk in &s.v {
            assert!(
                vk[(0, 0)].arg().abs() < 1e-9,
                "residual phase {}",
                vk[(0, 0)].arg()
            );
            // Amplitude untouched.
            assert!((vk[(0, 0)].abs() - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_phase_wrapping() {
        // A steep ramp wraps many times across the band; unwrapping must
        // still recover it.
        let mut s = ramp_series(1.0, -2.0);
        clean_phase_offsets(&mut s);
        for vk in &s.v {
            assert!(vk[(0, 0)].arg().abs() < 1e-9);
        }
    }

    #[test]
    fn preserves_nonlinear_structure() {
        // A quadratic phase component (not representable as slope +
        // intercept) must survive cleaning.
        let subcarriers: Vec<i32> = (-8..8).collect();
        let v = subcarriers
            .iter()
            .map(|&k| {
                CMatrix::from_fn(1, 1, |_, _| {
                    C64::from_polar(1.0, 0.01 * (k as f64) * (k as f64))
                })
            })
            .collect();
        let mut s = VSeries { subcarriers, v };
        clean_phase_offsets(&mut s);
        let spread: f64 =
            s.v.iter()
                .map(|vk| vk[(0, 0)].arg().abs())
                .fold(0.0, f64::max);
        assert!(spread > 0.05, "quadratic structure was destroyed");
    }

    #[test]
    fn cleaned_spec_flips_the_flag_only() {
        let spec = InputSpec::fast();
        let cleaned = cleaned_spec(&spec);
        assert!(cleaned.offset_cleaning);
        assert_eq!(cleaned.stride, spec.stride);
        assert_eq!(cleaned.antennas, spec.antennas);
    }

    #[test]
    fn short_series_is_a_no_op() {
        let mut s = VSeries {
            subcarriers: vec![0],
            v: vec![CMatrix::from_fn(1, 1, |_, _| C64::from_polar(1.0, 0.5))],
        };
        clean_phase_offsets(&mut s);
        assert!((s.v[0][(0, 0)].arg() - 0.5).abs() < 1e-12);
    }
}
