//! The training/evaluation harness behind every figure.

use crate::model::ModelConfig;
use deepcsi_data::{LabeledSamples, Split};
use deepcsi_nn::{evaluate, ConfusionMatrix, Network, TrainConfig, TrainReport, Trainer};
use serde::{Deserialize, Serialize};

/// Everything needed to run one training/evaluation experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Classifier architecture.
    pub model: ModelConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
}

impl ExperimentConfig {
    /// A fast-profile config suitable for the figure sweeps.
    pub fn fast(num_classes: usize, seed: u64) -> Self {
        ExperimentConfig {
            model: ModelConfig::fast(num_classes, seed),
            train: TrainConfig {
                epochs: 8,
                batch_size: 64,
                learning_rate: 1.5e-3,
                seed,
                ..TrainConfig::default()
            },
        }
    }
}

/// The outcome of one experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Test-set accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Test-set confusion matrix (the paper's figures).
    pub confusion: ConfusionMatrix,
    /// Per-epoch training diagnostics.
    pub report: TrainReport,
    /// The trained network, ready for deployment in an
    /// [`crate::Authenticator`].
    pub network: Network,
}

/// Trains the classifier on `split.train`/`split.val` and evaluates on
/// `split.test`.
///
/// # Panics
///
/// Panics if the split's training or test set is empty.
pub fn run_experiment(cfg: &ExperimentConfig, split: &Split) -> ExperimentResult {
    run_experiment_with_provider(cfg, split, &mut |_| None)
}

/// Like [`run_experiment`], but asks `provider` for an alternate training
/// set before each epoch — the channel-augmentation seam. Returning `None`
/// keeps `split.train` for that epoch; returning `Some(samples)` trains
/// that epoch on freshly generated data (e.g. the same devices under a
/// re-drawn propagation channel, the DeepCRF recipe). Validation and test
/// sets are never substituted.
///
/// # Panics
///
/// Panics if the split's training or test set is empty, or if a provided
/// epoch set is empty.
pub fn run_experiment_with_provider(
    cfg: &ExperimentConfig,
    split: &Split,
    provider: &mut dyn FnMut(usize) -> Option<LabeledSamples>,
) -> ExperimentResult {
    assert!(!split.train.is_empty(), "empty training set");
    assert!(!split.test.is_empty(), "empty test set");
    let mut net = cfg.model.build_for(&split.train.x[0]);
    let mut trainer = Trainer::new(cfg.train);
    let report = trainer.fit_with_provider(
        &mut net,
        &split.train.x,
        &split.train.y,
        &mut |epoch| provider(epoch).map(|s| (s.x, s.y)),
        &split.val.x,
        &split.val.y,
    );
    let (accuracy, confusion) = evaluate(&net, &split.test.x, &split.test.y);
    ExperimentResult {
        accuracy,
        confusion,
        report,
        network: net,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_data::LabeledSamples;
    use deepcsi_nn::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A synthetic "two-device" dataset: class-dependent mean pattern +
    /// noise, shaped like a small feedback tensor.
    fn toy_split(n_per_class: usize) -> Split {
        let mut rng = StdRng::seed_from_u64(5);
        let mut make = |class: usize| {
            let mut data = Vec::with_capacity(2 * 32);
            for ch in 0..2 {
                for w in 0..32 {
                    let base = if class == 0 {
                        ((w + ch) as f32 * 0.4).sin() * 0.5
                    } else {
                        ((w * 2 + ch) as f32 * 0.3).cos() * 0.5
                    };
                    data.push(base + rng.gen_range(-0.1..0.1));
                }
            }
            Tensor::from_vec(data, vec![2, 1, 32])
        };
        let mut split = Split::default();
        for i in 0..n_per_class {
            for class in 0..2 {
                let t = make(class);
                if i % 5 == 4 {
                    split.test.push(t, class);
                } else if i % 5 == 3 {
                    split.val.push(t, class);
                } else {
                    split.train.push(t, class);
                }
            }
        }
        split
    }

    #[test]
    fn learns_separable_toy_classes() {
        let split = toy_split(30);
        let cfg = ExperimentConfig {
            model: ModelConfig {
                conv_filters: vec![8, 8],
                conv_kernels: vec![5, 3],
                attention_kernel: 5,
                dense_units: vec![16],
                dropout_rates: vec![0.1],
                num_classes: 2,
                seed: 1,
            },
            train: deepcsi_nn::TrainConfig {
                epochs: 10,
                batch_size: 16,
                learning_rate: 2e-3,
                threads: 2,
                seed: 1,
                ..deepcsi_nn::TrainConfig::default()
            },
        };
        let result = run_experiment(&cfg, &split);
        assert!(
            result.accuracy > 0.9,
            "toy accuracy only {:.2}",
            result.accuracy
        );
        assert_eq!(result.confusion.num_classes(), 2);
        assert_eq!(result.report.epoch_losses.len(), 10);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_split_panics() {
        let cfg = ExperimentConfig::fast(2, 0);
        let _ = run_experiment(&cfg, &Split::default());
    }

    #[test]
    fn fast_config_has_expected_shape() {
        let cfg = ExperimentConfig::fast(10, 3);
        assert_eq!(cfg.model.num_classes, 10);
        assert!(cfg.train.epochs > 0);
        let _ = LabeledSamples::default();
    }
}
