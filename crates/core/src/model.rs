//! The DeepCSI classifier architecture (Fig. 4).

use deepcsi_nn::{
    AlphaDropout, Conv2d, Dense, Flatten, MaxPool2d, Network, Selu, SpatialAttention, Tensor,
};
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of the DeepCSI classifier.
///
/// The defaults are the paper's selection (§III-C / §V): five
/// convolutional layers with 128 filters and kernels (1,7)(1,7)(1,7)(1,5)
/// (1,3), max-pooling (1,2) after each, a spatial-attention block, dense
/// layers of 128 and 64 units with alpha-dropout rates 0.5 and 0.2, and a
/// 10-class softmax head. At the paper's input size this counts 489,305
/// trainable parameters (the paper reports 489,301).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Filters per convolutional layer (one entry per layer).
    pub conv_filters: Vec<usize>,
    /// Kernel widths per convolutional layer (same length).
    pub conv_kernels: Vec<usize>,
    /// Attention convolution kernel width.
    pub attention_kernel: usize,
    /// Hidden dense layer sizes.
    pub dense_units: Vec<usize>,
    /// Alpha-dropout rates between the dense layers (same length).
    pub dropout_rates: Vec<f32>,
    /// Number of output classes (modules).
    pub num_classes: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's architecture.
    pub fn paper(num_classes: usize, seed: u64) -> Self {
        ModelConfig {
            conv_filters: vec![128; 5],
            conv_kernels: vec![7, 7, 7, 5, 3],
            attention_kernel: 7,
            dense_units: vec![128, 64],
            dropout_rates: vec![0.5, 0.2],
            num_classes,
            seed,
        }
    }

    /// A two-conv-layer demo profile that trains to usable accuracy in
    /// about a second on narrow (`stride: 4`) inputs — the recipe the
    /// serving demos, the `deepcsi-served` binary and the engine
    /// integration tests all share.
    pub fn demo(num_classes: usize) -> Self {
        ModelConfig {
            conv_filters: vec![16, 16],
            conv_kernels: vec![7, 5],
            attention_kernel: 7,
            dense_units: vec![32],
            dropout_rates: vec![0.1],
            num_classes,
            seed: 5,
        }
    }

    /// A slimmer profile for laptop-scale experiment sweeps (same layer
    /// structure, fewer filters/units). Used by the figure binaries
    /// together with [`deepcsi_data::InputSpec::fast`].
    pub fn fast(num_classes: usize, seed: u64) -> Self {
        ModelConfig {
            conv_filters: vec![24; 4],
            conv_kernels: vec![7, 7, 5, 3],
            attention_kernel: 7,
            dense_units: vec![48, 32],
            dropout_rates: vec![0.3, 0.1],
            num_classes,
            seed,
        }
    }

    /// Builds the network for a given input shape `(channels, rows,
    /// cols)`.
    ///
    /// # Panics
    ///
    /// Panics if configuration vectors disagree in length or the input is
    /// too narrow for the pooling pyramid.
    pub fn build(&self, input_shape: (usize, usize, usize)) -> Network {
        assert_eq!(
            self.conv_filters.len(),
            self.conv_kernels.len(),
            "one kernel per conv layer"
        );
        assert_eq!(
            self.dense_units.len(),
            self.dropout_rates.len(),
            "one dropout rate per dense layer"
        );
        let (mut ch, rows, mut cols) = input_shape;
        let mut net = Network::new();
        for (li, (&filters, &kernel)) in self
            .conv_filters
            .iter()
            .zip(self.conv_kernels.iter())
            .enumerate()
        {
            net.push(Conv2d::new(
                ch,
                filters,
                (1, kernel),
                self.seed.wrapping_add(li as u64 * 101),
            ));
            net.push(Selu::new());
            net.push(MaxPool2d::new((1, 2)));
            ch = filters;
            cols /= 2;
            assert!(cols > 0, "input too narrow for the pooling pyramid");
        }
        net.push(SpatialAttention::new(
            self.attention_kernel,
            self.seed.wrapping_add(7777),
        ));
        net.push(Flatten::new());
        let mut dim = ch * rows * cols;
        for (li, (&units, &rate)) in self
            .dense_units
            .iter()
            .zip(self.dropout_rates.iter())
            .enumerate()
        {
            net.push(Dense::new(
                dim,
                units,
                self.seed.wrapping_add(900 + li as u64),
            ));
            net.push(Selu::new());
            net.push(AlphaDropout::new(
                rate,
                self.seed.wrapping_add(950 + li as u64),
            ));
            dim = units;
        }
        net.push(Dense::new(
            dim,
            self.num_classes,
            self.seed.wrapping_add(999),
        ));
        net
    }

    /// Builds the network and sanity-checks it against a probe input.
    ///
    /// # Panics
    ///
    /// Panics if the probe's shape disagrees with `input_shape`.
    pub fn build_for(&self, probe: &Tensor) -> Network {
        let [c, h, w]: [usize; 3] = probe
            .shape()
            .try_into()
            .expect("classifier input must be rank 3");
        self.build((c, h, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_parameter_count() {
        // §III-C: "a DNN containing 489,301 trainable parameters". Our
        // bias bookkeeping counts 489,305 — same architecture.
        let cfg = ModelConfig::paper(10, 0);
        let mut net = cfg.build((5, 1, 234));
        assert_eq!(net.num_params(), 489_305);
    }

    #[test]
    fn forward_shape_is_class_logits() {
        let cfg = ModelConfig::fast(10, 1);
        let mut net = cfg.build((5, 1, 117));
        let y = net.forward(&Tensor::zeros(vec![5, 1, 117]), false);
        assert_eq!(y.shape(), &[10]);
        assert!(y.is_finite());
    }

    #[test]
    fn works_for_20mhz_inputs() {
        // 52 tones survive the paper's five (1,2) pools: 52→26→13→6→3→1.
        let cfg = ModelConfig::paper(10, 0);
        let mut net = cfg.build((5, 1, 52));
        let y = net.forward(&Tensor::zeros(vec![5, 1, 52]), false);
        assert_eq!(y.shape(), &[10]);
    }

    #[test]
    fn two_row_input_is_supported() {
        let cfg = ModelConfig::fast(10, 3);
        let mut net = cfg.build((5, 2, 117));
        let y = net.forward(&Tensor::zeros(vec![5, 2, 117]), false);
        assert_eq!(y.shape(), &[10]);
    }

    #[test]
    fn seeds_change_weights() {
        let a = ModelConfig::fast(4, 1).build((2, 1, 32));
        let b = ModelConfig::fast(4, 2).build((2, 1, 32));
        let x = Tensor::from_vec(vec![0.5; 64], vec![2, 1, 32]);
        let ya = a.clone().forward(&x, false);
        let yb = b.clone().forward(&x, false);
        assert_ne!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn too_narrow_input_panics() {
        let cfg = ModelConfig::paper(10, 0);
        let _ = cfg.build((5, 1, 8)); // 8 → 4 → 2 → 1 → 0
    }
}
