//! The DeepCSI system: radio fingerprinting of MU-MIMO Wi-Fi beamformers
//! from compressed beamforming feedback.
//!
//! This crate ties the substrates together into the system of Fig. 1/3:
//!
//! * [`ModelConfig`] — the Fig. 4 CNN (conv + SELU + max-pool stacks, a
//!   spatial-attention block with skip connection, dense layers with
//!   alpha-dropout), with the paper's exact hyper-parameters
//!   (489 k trainable parameters) and a fast laptop-scale profile.
//! * [`Authenticator`] — the deployed observer: sniffed frame bytes →
//!   parsed angles → reconstructed Ṽ → tensor → module identity, with
//!   save/load for trained models ("the trained learning algorithm can be
//!   run … on low-cost Wi-Fi devices").
//! * [`FrozenAuthenticator`] — [`Authenticator::freeze`]'s immutable,
//!   `Send + Sync` serving snapshot: one `Arc` shared by every engine
//!   worker, bit-equal predictions, all scratch in per-worker
//!   [`deepcsi_nn::InferCtx`]s.
//! * [`run_experiment`] — the training/evaluation harness all figure
//!   binaries use (train on a [`deepcsi_data::Split`], report accuracy
//!   and the confusion matrix).
//! * [`baseline`] — the Fig. 16 comparison: classify from
//!   offset-cleaned Ṽ (the \[36\] sanitizer), which deletes part of the
//!   hardware fingerprint.
//!
//! # Example: train and deploy on a tiny synthetic dataset
//!
//! ```no_run
//! use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
//! use deepcsi_data::{generate_d1, d1_split, D1Set, GenConfig, InputSpec};
//! use deepcsi_nn::TrainConfig;
//!
//! let mut gen = GenConfig::default();
//! gen.num_modules = 4;
//! gen.snapshots_per_trace = 30;
//! let ds = generate_d1(&gen);
//! let spec = InputSpec::fast();
//! let split = d1_split(&ds, D1Set::S1, &[1], &spec);
//! let cfg = ExperimentConfig {
//!     model: ModelConfig::fast(4, 0),
//!     train: TrainConfig::default(),
//! };
//! let result = run_experiment(&cfg, &split);
//! println!("accuracy {:.1}%", result.accuracy * 100.0);
//! let auth = Authenticator::new(result.network, spec);
//! # let _ = auth;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod experiment;
mod model;
mod pipeline;

pub use experiment::{
    run_experiment, run_experiment_with_provider, ExperimentConfig, ExperimentResult,
};
pub use model::ModelConfig;
pub use pipeline::{AuthError, Authenticator, FrozenAuthenticator, Precision};
