//! Deterministic regression: a mid-stream channel re-draw degrades the
//! fixed-majority policy, and per-position calibration recovers it.
//!
//! The stream starts on the training channel (segment 1), then the room
//! is re-drawn and the receiver moves (segment 2). Post-redraw the
//! classifier still identifies the genuine modules, but one of them
//! only by a *thin* majority — below the strict deployment vote gate,
//! so [`PolicyKind::FixedMajority`] loses a genuine device it accepted
//! before the re-draw. [`PolicyKind::AdaptiveThreshold`] with
//! [`per_position`](deepcsi_serve::AdaptiveParams::per_position)
//! calibration detects the confidence regime change, re-profiles the
//! stream at its new position (restarting its decision window so the
//! gates are learned from post-move statistics), learns a thinner (but
//! still strict-majority) vote gate, and accepts the genuine devices
//! again — without ever accepting an impostor.
//!
//! The whole pipeline is deterministic (seeded generation, seeded
//! training, verdicts independent of engine threading), so these are
//! exact pins, run at both f32 and int8 serving precision.

use deepcsi_core::{
    run_experiment_with_provider, Authenticator, ExperimentConfig, ModelConfig, Precision,
};
use deepcsi_data::{Dataset, LabeledSamples, Split};
use deepcsi_impair::DeviceId;
use deepcsi_nn::TrainConfig;
use deepcsi_scenario::{input_spec, samples, stream_mac, SegmentSpec};
use deepcsi_serve::{
    Backpressure, DecisionPolicyConfig, DeviceRegistry, Engine, EngineConfig, PolicyKind,
    ReplaySource, Verdict, VerdictPolicy,
};
use std::collections::HashMap;

const MODULES: u32 = 3;
const TRAIN_SNAPSHOTS: usize = 20;
const SEG1_SNAPSHOTS: usize = 30;
const SEG2_SNAPSHOTS: usize = 60;
/// The re-drawn room (segment 2). Deliberately *not* one of the rooms
/// the augmentation provider re-draws during training, so the post-
/// redraw stream is degraded (thin majority) rather than clean.
const REDRAW_ENV: u64 = 6;
/// The receiver position after the re-draw.
const REDRAW_POS: usize = 5;
/// The deployment vote gate: verdicts need a 17/20 majority. Strict
/// enough that the post-redraw thin-majority stream fails it.
const DEPLOY_VOTE_GATE: f64 = 0.85;

fn train_split() -> Split {
    let base = samples(
        &SegmentSpec::train().dataset(MODULES, TRAIN_SNAPSHOTS),
        &input_spec(),
    );
    let mut train = LabeledSamples::default();
    let mut val = LabeledSamples::default();
    for (i, (x, y)) in base.x.iter().zip(&base.y).enumerate() {
        if i % 5 == 4 {
            val.push(x.clone(), *y);
        } else {
            train.push(x.clone(), *y);
        }
    }
    Split {
        train,
        val: val.clone(),
        test: val,
    }
}

/// Trains with channel augmentation (epoch re-draws over several rooms
/// and SNRs, including the segment-2 room), so the classifier survives
/// the re-draw and the remaining degradation is *vote/confidence
/// dilution* — the regime the decision policies differ in.
fn trained() -> (Authenticator, Split) {
    let split = train_split();
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(MODULES as usize),
        train: TrainConfig {
            epochs: 8,
            batch_size: 32,
            learning_rate: 2e-3,
            seed: 7,
            ..TrainConfig::default()
        },
    };
    let spec = input_spec();
    let base = split.train.clone();
    let mut provider = |epoch: usize| {
        let seg = SegmentSpec {
            snr_db: Some([25.0, 15.0, 10.0][epoch % 3]),
            ..SegmentSpec::at([0, 7, 3, 5][epoch % 4], 1)
        };
        let mut out = base.clone();
        out.extend(samples(&seg.dataset(MODULES, TRAIN_SNAPSHOTS), &spec));
        Some(out)
    };
    let result = run_experiment_with_provider(&cfg, &split, &mut provider);
    (Authenticator::new(result.network, input_spec()), split)
}

/// Identity each beamformee-2 stream *claims* (its registry entry).
/// Chosen so the claim differs from the classifier's majority on that
/// stream in both rooms — an impostor whose stolen MAC happens to match
/// what the classifier thinks the hardware is would be accepted by any
/// vote policy, which is not the property under test here.
const IMPOSTOR_CLAIMS: [u32; 3] = [2, 0, 0];

fn registry() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    for m in 0..MODULES {
        reg.register(stream_mac(DeviceId(m), 1), DeviceId(m));
        reg.register(
            stream_mac(DeviceId(m), 2),
            DeviceId(IMPOSTOR_CLAIMS[m as usize]),
        );
    }
    reg
}

fn redraw_segments() -> Vec<Dataset> {
    vec![
        SegmentSpec::train().dataset(MODULES, SEG1_SNAPSHOTS),
        SegmentSpec::at(REDRAW_ENV, REDRAW_POS).dataset(MODULES, SEG2_SNAPSHOTS),
    ]
}

/// Replays `segments` back-to-back through one engine and returns the
/// final verdict per source MAC.
fn run_stream(
    auth: &Authenticator,
    calib: &Split,
    precision: Precision,
    kind: PolicyKind,
    per_position: bool,
    segments: &[Dataset],
) -> HashMap<deepcsi_frame::MacAddr, Verdict> {
    let frozen = match precision {
        Precision::Int8 => auth
            .freeze_int8(&calib.train.x)
            .expect("int8 freeze must succeed"),
        _ => auth.freeze(),
    };
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            precision,
            // A strict deployment gate. The adaptive policy may relax
            // it per stream, but never below a strict majority (0.505).
            policy: VerdictPolicy {
                min_vote_fraction: DEPLOY_VOTE_GATE,
                ..VerdictPolicy::default()
            },
            decision: DecisionPolicyConfig {
                kind,
                per_position,
                ..DecisionPolicyConfig::default()
            },
            ..EngineConfig::default()
        },
        frozen,
        registry(),
    );
    for ds in segments {
        let replay = ReplaySource::from_dataset(ds);
        for frame in replay.frames() {
            engine.ingest_frame(frame);
        }
    }
    engine
        .shutdown()
        .decisions
        .into_iter()
        .map(|d| (d.source, d.verdict))
        .collect()
}

/// The genuine module whose post-redraw majority is correct but thin
/// (in the gap between the learned and deployment vote gates).
const BORDERLINE: DeviceId = DeviceId(2);

/// The deterministic pin shared by the f32 and int8 variants.
fn assert_redraw_contrast(precision: Precision) {
    let (auth, calib) = trained();

    // Pre-redraw health: on the training channel alone, both policies
    // accept every genuine stream and no impostor.
    let seg1_only = vec![SegmentSpec::train().dataset(MODULES, SEG1_SNAPSHOTS)];
    for (kind, per_position) in [
        (PolicyKind::FixedMajority, false),
        (PolicyKind::AdaptiveThreshold, true),
    ] {
        let verdicts = run_stream(&auth, &calib, precision, kind, per_position, &seg1_only);
        assert_eq!(
            genuine_accepts(&verdicts),
            MODULES as usize,
            "{kind:?} must accept every genuine stream on the training channel ({precision:?})",
        );
        assert_eq!(
            impostor_accepts(&verdicts),
            0,
            "{kind:?} must not accept impostors on the training channel ({precision:?})",
        );
    }

    // The same streams with a mid-stream re-draw.
    let segments = redraw_segments();
    let fixed = run_stream(
        &auth,
        &calib,
        precision,
        PolicyKind::FixedMajority,
        false,
        &segments,
    );
    let adaptive = run_stream(
        &auth,
        &calib,
        precision,
        PolicyKind::AdaptiveThreshold,
        true,
        &segments,
    );

    // FixedMajority loses the borderline genuine device: its post-
    // redraw majority is correct but under the deployment gate, so the
    // verdict falls back to Unknown (never a false Reject).
    assert_eq!(
        fixed[&stream_mac(BORDERLINE, 1)],
        Verdict::Unknown,
        "fixed majority must lose the borderline genuine device after the re-draw ({precision:?})",
    );
    assert_eq!(
        genuine_accepts(&fixed),
        MODULES as usize - 1,
        "fixed majority must keep the clean genuine devices ({precision:?})",
    );

    // AdaptiveThreshold + per-position calibration re-profiles after
    // the move and recovers all genuine devices, the borderline one
    // included.
    assert_eq!(
        adaptive[&stream_mac(BORDERLINE, 1)],
        Verdict::Accept,
        "per-position calibration must recover the borderline genuine device ({precision:?})",
    );
    assert_eq!(
        genuine_accepts(&adaptive),
        MODULES as usize,
        "per-position calibration must accept every genuine stream ({precision:?})",
    );
    assert!(
        genuine_accepts(&adaptive) > genuine_accepts(&fixed),
        "the mitigation must strictly improve on fixed majority ({precision:?})",
    );

    // Relaxing the gate per stream must not open the door to impostors.
    assert_eq!(
        impostor_accepts(&fixed),
        0,
        "fixed majority must not accept impostors after the re-draw ({precision:?})",
    );
    assert_eq!(
        impostor_accepts(&adaptive),
        0,
        "per-position calibration must not accept impostors after the re-draw ({precision:?})",
    );
}

#[test]
fn redraw_degrades_fixed_majority_but_calibration_recovers_f32() {
    assert_redraw_contrast(Precision::F32);
}

#[test]
fn redraw_degrades_fixed_majority_but_calibration_recovers_int8() {
    assert_redraw_contrast(Precision::Int8);
}

fn genuine_accepts(verdicts: &HashMap<deepcsi_frame::MacAddr, Verdict>) -> usize {
    (0..MODULES)
        .filter(|&m| verdicts[&stream_mac(DeviceId(m), 1)] == Verdict::Accept)
        .count()
}

fn impostor_accepts(verdicts: &HashMap<deepcsi_frame::MacAddr, Verdict>) -> usize {
    (0..MODULES)
        .filter(|&m| verdicts[&stream_mac(DeviceId(m), 2)] == Verdict::Accept)
        .count()
}

/// Scans (env, snr) cells for the regime the regression needs: some
/// genuine module whose final-window majority is *correct but thin*
/// (vote in the 0.505..0.6 gap between the learned and fixed gates)
/// while the others stay comfortably above 0.6 — at both precisions.
#[test]
#[ignore = "tuning probe, not a regression pin; run with -- --ignored --nocapture"]
fn probe_window_votes() {
    let (auth, calib) = trained();
    let window = 25;
    for env in 1u64..=7 {
        for snr in [13.0, 12.0, 11.0, 10.0, 9.0] {
            let seg = SegmentSpec {
                snr_db: Some(snr),
                ..SegmentSpec::at(env, 1)
            };
            let ds = seg.dataset(MODULES, SEG2_SNAPSHOTS);
            let mut line = format!("env {env} snr {snr:5.1}:");
            for precision in [Precision::F32, Precision::Int8] {
                let frozen = match precision {
                    Precision::Int8 => auth.freeze_int8(&calib.train.x).unwrap(),
                    _ => auth.freeze(),
                };
                let mut ctx = frozen.ctx();
                for t in ds.traces.iter().filter(|t| t.beamformee == 1) {
                    let preds: Vec<usize> = t.snapshots[t.snapshots.len() - window..]
                        .iter()
                        .map(|fb| frozen.classify_feedback(fb, &mut ctx))
                        .collect();
                    let correct = preds.iter().filter(|&&p| p == t.module.0 as usize).count();
                    line.push_str(&format!(
                        " {:?}/m{} {:.2}",
                        precision,
                        t.module.0,
                        correct as f64 / window as f64
                    ));
                }
            }
            println!("{line}");
        }
    }
}

/// Scans for cells whose post-redraw dilution is *stationary*: some
/// module's seg2 votes sit in a stable band under the fixed gate while
/// misses are spread from the start (so the learned gate calibrates on
/// representative statistics), and the other modules stay clean.
#[test]
#[ignore = "tuning probe, not a regression pin; run with -- --ignored --nocapture"]
fn probe_stationarity() {
    let (auth, _calib) = trained();
    let frozen = auth.freeze();
    let mut ctx = frozen.ctx();
    for env in 1u64..=7 {
        for pos in [1usize, 3, 5, 8] {
            for snr in [20.0, 12.0] {
                let seg = SegmentSpec {
                    snr_db: Some(snr),
                    ..SegmentSpec::at(env, pos)
                };
                let ds = seg.dataset(MODULES, SEG2_SNAPSHOTS);
                let mut line = format!("env {env} pos {pos} snr {snr:4.1}:");
                for t in ds.traces.iter().filter(|t| t.beamformee == 1) {
                    let preds: Vec<bool> = t
                        .snapshots
                        .iter()
                        .map(|fb| frozen.classify_feedback(fb, &mut ctx) == t.module.0 as usize)
                        .collect();
                    let vote = |a: usize, b: usize| {
                        preds[a..b].iter().filter(|&&c| c).count() as f64 / (b - a) as f64
                    };
                    line.push_str(&format!(
                        " m{}[{:.2}/{:.2}/{:.2} f10 {}]",
                        t.module.0,
                        vote(0, 25),
                        vote(17, 42),
                        vote(35, 60),
                        preds[..10].iter().filter(|&&c| c).count(),
                    ));
                }
                println!("{line}");
            }
        }
    }
}

/// Steps the adaptive+per-position state machine over one genuine
/// stream and prints its trajectory (EMA, vote, gates, verdict).
#[test]
#[ignore = "tuning probe, not a regression pin; run with -- --ignored --nocapture"]
fn probe_adaptive_trajectory() {
    use deepcsi_serve::{AdaptiveParams, AdaptiveThreshold, PolicyState, WindowConfig};

    let (auth, _calib) = trained();
    let frozen = auth.freeze();
    let mut ctx = frozen.ctx();
    let verdict_policy = VerdictPolicy {
        min_vote_fraction: DEPLOY_VOTE_GATE,
        ..VerdictPolicy::default()
    };
    let policy = AdaptiveThreshold::new(
        WindowConfig::default(),
        verdict_policy,
        AdaptiveParams {
            per_position: true,
            ..AdaptiveParams::default()
        },
    );
    let segments = redraw_segments();
    let module = DeviceId(2);
    let mut state = policy.state();
    let mut i = 0usize;
    for ds in &segments {
        let t = ds
            .traces
            .iter()
            .find(|t| t.module == module && t.beamformee == 1)
            .unwrap();
        for fb in &t.snapshots {
            let x = frozen.tensorize(fb);
            let logits = frozen.model().infer(&x, &mut ctx);
            let pred = logits.argmax();
            let max = logits
                .as_slice()
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            let sum: f64 = logits
                .as_slice()
                .iter()
                .map(|&v| f64::from(v - max).exp())
                .sum();
            let confidence = 1.0 / sum;
            state.push(pred, confidence);
            let d = state.decision().unwrap();
            if i % 5 == 4 || i == 29 || i == 30 {
                println!(
                    "report {i:3}: pred {pred} ema {:.3} vote {:.2} calibrating {} threshold {:?} gate {:?} verdict {:?}",
                    d.confidence_ema,
                    d.vote_fraction,
                    state.calibrating(),
                    state.threshold().map(|t| (t * 1000.0).round() / 1000.0),
                    state.vote_gate().map(|g| (g * 1000.0).round() / 1000.0),
                    state.verdict(Some(module.0 as usize)),
                );
            }
            i += 1;
        }
    }
}

/// Exploration harness: prints per-device engine verdicts for the
/// pinned redraw cell so the pins below can be re-derived if the
/// generator or model ever changes intentionally.
#[test]
#[ignore = "tuning probe, not a regression pin; run with -- --ignored --nocapture"]
fn probe_engine_verdicts() {
    let (auth, calib) = trained();
    let segments = redraw_segments();
    for (si, seg) in segments.iter().enumerate() {
        for t in &seg.traces {
            let mut counts = vec![0usize; MODULES as usize];
            for fb in &t.snapshots {
                counts[auth.classify_feedback(fb)] += 1;
            }
            println!(
                "  seg{si} module {} bf{} pred counts {counts:?}",
                t.module, t.beamformee
            );
        }
    }
    for precision in [Precision::F32, Precision::Int8] {
        let fixed = run_stream(
            &auth,
            &calib,
            precision,
            PolicyKind::FixedMajority,
            false,
            &segments,
        );
        let adaptive = run_stream(
            &auth,
            &calib,
            precision,
            PolicyKind::AdaptiveThreshold,
            true,
            &segments,
        );
        let per_device: Vec<String> = (0..MODULES)
            .map(|m| {
                format!(
                    "m{m} fixed {:?} adaptive {:?} | imp{m} fixed {:?} adaptive {:?}",
                    fixed[&stream_mac(DeviceId(m), 1)],
                    adaptive[&stream_mac(DeviceId(m), 1)],
                    fixed[&stream_mac(DeviceId(m), 2)],
                    adaptive[&stream_mac(DeviceId(m), 2)]
                )
            })
            .collect();
        println!(
            "{precision:?}: fixed genuine {}/{} impostor {} | adaptive+pp genuine {}/{} impostor {} | {}",
            genuine_accepts(&fixed),
            MODULES,
            impostor_accepts(&fixed),
            genuine_accepts(&adaptive),
            MODULES,
            impostor_accepts(&adaptive),
            per_device.join(" | "),
        );
    }
}
