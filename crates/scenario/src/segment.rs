//! Serve-time condition segments.
//!
//! A [`SegmentSpec`] pins every knob the generation pipeline exposes for
//! one contiguous stretch of a serve stream: which room draw the channel
//! comes from, where the beamformee sits, whether the AP is being
//! carried, the SNR / phase-noise floor, and how many days of hardware
//! drift separate the capture from the fingerprint profile. A scenario
//! is simply a sequence of segments replayed back-to-back into one
//! engine, so a two-segment scenario *is* a mid-stream condition change.

use deepcsi_data::{
    generate_trace, Dataset, GenConfig, InputSpec, LabeledSamples, TraceKind, TraceSpec,
};
use deepcsi_impair::DeviceId;

/// One contiguous stretch of serve-time conditions.
///
/// [`SegmentSpec::train`] is the canonical training condition (room
/// draw 0, position 1, static, calibrated radios, day 0); every field a
/// scenario leaves at that default keeps the train-time value, so the
/// deltas in a scenario definition read as exactly the axis it perturbs.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSpec {
    /// Room draw (`Environment::fig6` id) — re-drawing this mid-stream
    /// models a channel change at fixed geometry class.
    pub env_id: u64,
    /// Beamformee position index 1..=9 (Fig. 6 stars).
    pub rx_position: usize,
    /// Generate along the A-B-C-D-B-A mobility path instead of a static
    /// placement.
    pub mobility: bool,
    /// Override the mean CFR-estimation SNR \[dB\] (`None` = profile
    /// default).
    pub snr_db: Option<f64>,
    /// Override the per-packet phase-noise std \[rad\] (`None` = profile
    /// default). Raised together with a low [`SegmentSpec::snr_db`] to
    /// model an interference burst.
    pub phase_noise_std_rad: Option<f64>,
    /// Days of hardware drift since profiling (see
    /// [`deepcsi_data::GenConfig::drift_day`]).
    pub drift_day: u32,
    /// Drift magnitude (see [`deepcsi_data::GenConfig::drift_scale`]).
    pub drift_scale: f64,
}

impl SegmentSpec {
    /// The canonical train-time condition.
    pub fn train() -> Self {
        SegmentSpec {
            env_id: 0,
            rx_position: 1,
            mobility: false,
            snr_db: None,
            phase_noise_std_rad: None,
            drift_day: 0,
            drift_scale: 0.0,
        }
    }

    /// Train-time condition moved to another room draw and position.
    pub fn at(env_id: u64, rx_position: usize) -> Self {
        SegmentSpec {
            env_id,
            rx_position,
            ..SegmentSpec::train()
        }
    }

    /// The generator configuration this segment resolves to.
    pub fn gen_config(&self, num_modules: u32, snapshots: usize) -> GenConfig {
        let mut cfg = GenConfig {
            env_id: self.env_id,
            snapshots_per_trace: snapshots,
            num_modules,
            drift_day: self.drift_day,
            drift_scale: self.drift_scale,
            ..GenConfig::default()
        };
        if let Some(snr) = self.snr_db {
            cfg.profile.snr_db = snr;
        }
        if let Some(pn) = self.phase_noise_std_rad {
            cfg.profile.phase_noise_std_rad = pn;
        }
        cfg
    }

    /// Generates the segment's capture: for every module, one genuine
    /// stream (beamformee 1) and one impostor stream (beamformee 2),
    /// each `snapshots` soundings long, under this segment's conditions.
    pub fn dataset(&self, num_modules: u32, snapshots: usize) -> Dataset {
        let cfg = self.gen_config(num_modules, snapshots);
        let mut traces = Vec::with_capacity(num_modules as usize * 2);
        for module in 0..num_modules {
            for beamformee in [1u8, 2u8] {
                let kind = if self.mobility {
                    TraceKind::D2Mobility { group: 1, idx: 0 }
                } else {
                    TraceKind::D1Static {
                        position: self.rx_position,
                    }
                };
                traces.push(generate_trace(
                    &cfg,
                    &TraceSpec {
                        module: DeviceId(module),
                        beamformee,
                        n_rx: 2,
                        rx_position: self.rx_position,
                        kind,
                    },
                ));
            }
        }
        Dataset { traces }
    }
}

impl Default for SegmentSpec {
    fn default() -> Self {
        SegmentSpec::train()
    }
}

/// Labels every snapshot of every trace with its true module id, ready
/// for training or [`deepcsi_nn::evaluate`].
pub fn samples(ds: &Dataset, spec: &InputSpec) -> LabeledSamples {
    let mut out = LabeledSamples::default();
    for trace in &ds.traces {
        for fb in &trace.snapshots {
            out.push(spec.tensor(fb), trace.module.0 as usize);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_generation_is_deterministic() {
        let seg = SegmentSpec::at(3, 5);
        assert_eq!(seg.dataset(2, 3), seg.dataset(2, 3));
    }

    #[test]
    fn overrides_reach_the_generator() {
        let seg = SegmentSpec {
            snr_db: Some(6.0),
            phase_noise_std_rad: Some(0.3),
            drift_day: 10,
            drift_scale: 0.3,
            ..SegmentSpec::train()
        };
        let cfg = seg.gen_config(4, 7);
        assert_eq!(cfg.profile.snr_db, 6.0);
        assert_eq!(cfg.profile.phase_noise_std_rad, 0.3);
        assert_eq!(cfg.drift_day, 10);
        assert_eq!(cfg.num_modules, 4);
        assert_eq!(cfg.snapshots_per_trace, 7);
        // The train segment keeps profile defaults.
        let base = SegmentSpec::train().gen_config(4, 7);
        assert_eq!(base.profile, deepcsi_impair::ImpairmentProfile::default());
    }

    #[test]
    fn dataset_holds_one_genuine_and_one_impostor_stream_per_module() {
        let ds = SegmentSpec::train().dataset(3, 2);
        assert_eq!(ds.traces.len(), 6);
        for module in 0..3u32 {
            for bf in [1u8, 2u8] {
                assert!(ds
                    .traces
                    .iter()
                    .any(|t| t.module == DeviceId(module) && t.beamformee == bf));
            }
        }
    }

    #[test]
    fn samples_label_by_module() {
        let spec = InputSpec::fast();
        let ds = SegmentSpec::train().dataset(2, 2);
        let s = samples(&ds, &spec);
        assert_eq!(s.len(), 8);
        assert!(s.y.iter().all(|&y| y < 2));
    }
}
