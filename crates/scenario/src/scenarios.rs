//! The built-in channel-resilience scenario axes.
//!
//! Each axis perturbs exactly one serve-time condition away from the
//! training condition ([`SegmentSpec::train`]): position, room draw,
//! mobility, SNR, interference bursts, or multi-day hardware drift.
//! Multi-segment scenarios replay their segments back-to-back into one
//! engine, so the condition changes *mid-stream* — the regime that
//! breaks calibration learned on the head of the stream.

use crate::segment::SegmentSpec;

/// A named serve-time condition sequence.
///
/// Implementations are declarative: they only describe segments; the
/// [`ScenarioMatrix`](crate::ScenarioMatrix) owns generation, training,
/// engine driving, and scoring.
pub trait Scenario {
    /// Stable snake_case identifier (used in bench JSON keys).
    fn name(&self) -> &'static str;
    /// One-line human description.
    fn description(&self) -> &'static str;
    /// The serve stream, as back-to-back condition segments.
    fn segments(&self) -> Vec<SegmentSpec>;
}

/// Train at position 1, serve at position 5 (same room draw): the
/// cross-position generalization gap of Table I's S2/S3 splits.
pub struct CrossPosition;

impl Scenario for CrossPosition {
    fn name(&self) -> &'static str {
        "cross_position"
    }
    fn description(&self) -> &'static str {
        "train at position 1, serve at position 5 in the same room draw"
    }
    fn segments(&self) -> Vec<SegmentSpec> {
        vec![SegmentSpec::at(0, 5)]
    }
}

/// The channel is re-drawn mid-stream: the first half of the stream is
/// the training channel, the second half a fresh room draw.
pub struct ChannelRedraw;

impl Scenario for ChannelRedraw {
    fn name(&self) -> &'static str {
        "channel_redraw"
    }
    fn description(&self) -> &'static str {
        "mid-stream room re-draw: training channel, then a fresh draw"
    }
    fn segments(&self) -> Vec<SegmentSpec> {
        vec![SegmentSpec::at(0, 1), SegmentSpec::at(7, 1)]
    }
}

/// The AP is carried along the A-B-C-D-B-A path (dataset D2's mobility
/// regime) while serving.
pub struct Mobility;

impl Scenario for Mobility {
    fn name(&self) -> &'static str {
        "mobility"
    }
    fn description(&self) -> &'static str {
        "AP carried along A-B-C-D-B-A while serving"
    }
    fn segments(&self) -> Vec<SegmentSpec> {
        vec![SegmentSpec {
            mobility: true,
            ..SegmentSpec::train()
        }]
    }
}

/// SNR degrades across the stream: 25 dB → 15 dB → 8 dB segments.
pub struct SnrSweep;

impl Scenario for SnrSweep {
    fn name(&self) -> &'static str {
        "snr_sweep"
    }
    fn description(&self) -> &'static str {
        "SNR sweeps 25 -> 15 -> 8 dB across the stream"
    }
    fn segments(&self) -> Vec<SegmentSpec> {
        [25.0, 15.0, 8.0]
            .into_iter()
            .map(|snr| SegmentSpec {
                snr_db: Some(snr),
                ..SegmentSpec::train()
            })
            .collect()
    }
}

/// Clean segments alternate with interference bursts (6 dB SNR + heavy
/// phase noise), as under a co-channel interferer duty cycle.
pub struct InterferenceBursts;

impl Scenario for InterferenceBursts {
    fn name(&self) -> &'static str {
        "interference"
    }
    fn description(&self) -> &'static str {
        "clean segments alternating with 6 dB + heavy-phase-noise bursts"
    }
    fn segments(&self) -> Vec<SegmentSpec> {
        let burst = SegmentSpec {
            snr_db: Some(6.0),
            phase_noise_std_rad: Some(0.3),
            ..SegmentSpec::train()
        };
        vec![
            SegmentSpec::train(),
            burst.clone(),
            SegmentSpec::train(),
            burst,
        ]
    }
}

/// The same stream observed on day 0, day 10, and day 30 of hardware
/// drift (temperature/aging offsets re-sampled per day).
pub struct MultiDayDrift;

impl Scenario for MultiDayDrift {
    fn name(&self) -> &'static str {
        "drift"
    }
    fn description(&self) -> &'static str {
        "fingerprints aged 0, 10, and 30 days across the stream"
    }
    fn segments(&self) -> Vec<SegmentSpec> {
        [0u32, 10, 30]
            .into_iter()
            .map(|day| SegmentSpec {
                drift_day: day,
                drift_scale: if day == 0 { 0.0 } else { 0.3 },
                ..SegmentSpec::train()
            })
            .collect()
    }
}

/// The full six-axis suite.
pub fn standard_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(CrossPosition),
        Box::new(ChannelRedraw),
        Box::new(Mobility),
        Box::new(SnrSweep),
        Box::new(InterferenceBursts),
        Box::new(MultiDayDrift),
    ]
}

/// The 2-scenario CI smoke subset (one static gap, one mid-stream
/// change).
pub fn tiny_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![Box::new(CrossPosition), Box::new(ChannelRedraw)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_scenario_is_well_formed() {
        let suite = standard_scenarios();
        assert_eq!(suite.len(), 6);
        let mut names = std::collections::HashSet::new();
        for s in &suite {
            assert!(!s.segments().is_empty(), "{} has no segments", s.name());
            assert!(!s.description().is_empty());
            assert!(names.insert(s.name()), "duplicate scenario {}", s.name());
            for seg in s.segments() {
                assert!((1..=9).contains(&seg.rx_position));
            }
        }
    }

    #[test]
    fn redraw_actually_changes_the_room_mid_stream() {
        let segs = ChannelRedraw.segments();
        assert_eq!(segs.len(), 2);
        assert_ne!(segs[0].env_id, segs[1].env_id);
    }

    #[test]
    fn snr_sweep_is_monotone_decreasing() {
        let snrs: Vec<f64> = SnrSweep
            .segments()
            .iter()
            .map(|s| s.snr_db.expect("sweep pins SNR"))
            .collect();
        assert!(snrs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn drift_days_increase_and_start_unaged() {
        let days: Vec<u32> = MultiDayDrift
            .segments()
            .iter()
            .map(|s| s.drift_day)
            .collect();
        assert_eq!(days[0], 0);
        assert!(days.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn interference_alternates_clean_and_burst() {
        let segs = InterferenceBursts.segments();
        assert_eq!(segs.len(), 4);
        assert!(segs[0].snr_db.is_none() && segs[2].snr_db.is_none());
        assert!(segs[1].snr_db.is_some() && segs[3].snr_db.is_some());
    }
}
