//! Channel-resilience scenario evaluation for the DeepCSI serving
//! stack.
//!
//! Radio fingerprints ride on hardware impairments, but the observable
//! — beamforming-feedback CSI — also carries the propagation channel.
//! When the channel at serve time differs from the channel at train
//! time (another position, a re-drawn room, mobility, interference,
//! weeks of hardware drift), classifier confidence and verdict quality
//! degrade. This crate measures that degradation *end-to-end through
//! the serve engine*, and measures how much two mitigations recover:
//!
//! * **training-time channel augmentation** — re-draw the channel every
//!   epoch (the DeepCRF recipe), via
//!   [`deepcsi_core::run_experiment_with_provider`];
//! * **per-position calibration** — let the adaptive-threshold policy
//!   re-profile a stream after a confidence regime change
//!   ([`deepcsi_serve::AdaptiveParams::per_position`]).
//!
//! # Vocabulary
//!
//! * [`SegmentSpec`] — one contiguous stretch of serve conditions
//!   (room draw, position, mobility, SNR, phase noise, drift day).
//! * [`Scenario`] — a named sequence of segments; multi-segment
//!   scenarios change conditions *mid-stream*.
//! * [`ScenarioMatrix`] — the declarative grid
//!   `scenarios × decision policies × mitigation arms`, with
//!   [`ScenarioMatrix::run`] doing generation, training, engine
//!   driving, and scoring.
//! * [`MatrixReport`] — per-scenario top-1 accuracies plus per-cell
//!   genuine-accept / impostor-reject / reports-to-verdict.
//!
//! # Example
//!
//! ```no_run
//! use deepcsi_scenario::ScenarioMatrix;
//!
//! let report = ScenarioMatrix::tiny().run();
//! println!(
//!     "unmitigated floor {:?}, mitigated floor {:?}",
//!     report.accuracy_floor(false),
//!     report.accuracy_floor(true),
//! );
//! assert!(report.mitigation_never_worse());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod scenarios;
mod segment;

pub use matrix::{
    input_spec, stream_mac, CellResult, MatrixConfig, MatrixReport, Mitigations, ScenarioAccuracy,
    ScenarioMatrix,
};
pub use scenarios::{
    standard_scenarios, tiny_scenarios, ChannelRedraw, CrossPosition, InterferenceBursts, Mobility,
    MultiDayDrift, Scenario, SnrSweep,
};
pub use segment::{samples, SegmentSpec};
