//! The declarative scenario matrix and its engine-driven scorer.
//!
//! [`ScenarioMatrix::run`] composes the grid
//! `scenarios × decision policies × mitigation arms`:
//!
//! 1. **Train** one model per augmentation arm on the canonical
//!    training condition — the augmented arm re-draws the channel every
//!    epoch (the DeepCRF recipe) through
//!    [`deepcsi_core::run_experiment_with_provider`].
//! 2. **Score top-1 accuracy** per scenario × augmentation arm with
//!    [`deepcsi_nn::evaluate`] over every serve segment's snapshots
//!    (policy-independent: raw classifier resilience).
//! 3. **Drive the serve engine** per cell: each scenario's segments are
//!    replayed back-to-back into one [`deepcsi_serve::Engine`] under the
//!    cell's [`PolicyKind`] (with per-position calibration when the arm
//!    enables it), and the shutdown report is scored for
//!    genuine-accept rate, impostor-reject rate, and reports-to-verdict.
//!
//! Every stream is registered: beamformee 1 of module `m` as the
//! genuine device `m`, beamformee 2 of module `m` as an impostor
//! claiming `(m + 1) % N` — so accept/reject rates are measured against
//! ground truth, not just verdict counts.

use crate::scenarios::{standard_scenarios, tiny_scenarios, Scenario};
use crate::segment::{samples, SegmentSpec};
use deepcsi_core::{
    run_experiment, run_experiment_with_provider, Authenticator, ExperimentConfig, ModelConfig,
};
use deepcsi_data::{InputSpec, LabeledSamples, Split};
use deepcsi_frame::MacAddr;
use deepcsi_impair::DeviceId;
use deepcsi_nn::{evaluate, Network, TrainConfig};
use deepcsi_serve::{
    Backpressure, DecisionPolicyConfig, DeviceRegistry, Engine, EngineConfig, PolicyKind,
    ReplaySource, Verdict,
};
use std::collections::HashMap;

/// The two mitigations under test, each independently toggleable so the
/// matrix measures their effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mitigations {
    /// Training-time channel augmentation: re-draw the channel (room,
    /// position, SNR, drift) every epoch.
    pub augmentation: bool,
    /// Per-position calibration for the adaptive-threshold policy
    /// ([`deepcsi_serve::AdaptiveParams::per_position`]).
    pub per_position: bool,
}

impl Mitigations {
    /// Both mitigations off (the baseline arm).
    pub fn off() -> Self {
        Mitigations {
            augmentation: false,
            per_position: false,
        }
    }

    /// Both mitigations on.
    pub fn on() -> Self {
        Mitigations {
            augmentation: true,
            per_position: true,
        }
    }

    /// Stable label used in bench JSON keys.
    pub fn label(&self) -> &'static str {
        match (self.augmentation, self.per_position) {
            (false, false) => "unmitigated",
            (true, true) => "mitigated",
            (true, false) => "augmented_only",
            (false, true) => "calibrated_only",
        }
    }
}

/// Scale knobs shared by every cell of a matrix run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// AP modules to fingerprint (each contributes one genuine and one
    /// impostor stream).
    pub num_modules: u32,
    /// Soundings per trace in the training capture (and per augmented
    /// epoch re-draw).
    pub train_snapshots: usize,
    /// Soundings per trace in each serve segment.
    pub serve_snapshots: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training seed (generation is deterministic per segment already).
    pub seed: u64,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            num_modules: 3,
            train_snapshots: 20,
            serve_snapshots: 20,
            epochs: 8,
            seed: 7,
        }
    }
}

/// Scenario-level classifier resilience (policy-independent).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioAccuracy {
    /// Scenario name.
    pub scenario: &'static str,
    /// Whether the scoring model was trained with channel augmentation.
    pub augmentation: bool,
    /// Top-1 accuracy over every serve segment's snapshots.
    pub top1: f64,
}

/// One cell of the matrix: scenario × policy × mitigation arm, scored
/// through the serve engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// Decision policy driven through the engine.
    pub policy: PolicyKind,
    /// Mitigation arm.
    pub mitigations: Mitigations,
    /// Fraction of genuine streams whose final verdict is `Accept`.
    pub genuine_accept_rate: f64,
    /// Fraction of impostor streams *not* accepted (rejected or still
    /// unknown — the security-relevant "never falsely accepted" rate).
    pub impostor_reject_rate: f64,
    /// Median classified reports a stream needed before its verdict
    /// first left `Unknown` (`None` if no stream decided).
    pub reports_to_verdict_p50: Option<u64>,
}

/// Everything a matrix run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// Per scenario × augmentation-arm top-1 accuracy.
    pub accuracies: Vec<ScenarioAccuracy>,
    /// Per scenario × policy × arm engine-scored cells.
    pub cells: Vec<CellResult>,
}

impl MatrixReport {
    /// The cross-scenario accuracy floor (minimum top-1 over all
    /// scenarios) for one augmentation arm.
    pub fn accuracy_floor(&self, augmentation: bool) -> Option<f64> {
        self.accuracies
            .iter()
            .filter(|a| a.augmentation == augmentation)
            .map(|a| a.top1)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
    }

    /// `true` when every augmented cell's accuracy is at least the
    /// unmitigated cross-scenario floor — the "mitigation never made a
    /// cell worse than the unmitigated worst case" invariant the bench
    /// pins. Vacuously `true` when either arm is absent.
    pub fn mitigation_never_worse(&self) -> bool {
        let Some(floor) = self.accuracy_floor(false) else {
            return true;
        };
        self.accuracies
            .iter()
            .filter(|a| a.augmentation)
            .all(|a| a.top1 >= floor)
    }
}

/// The declarative evaluation grid: which scenarios to replay, which
/// decision policies to drive, and which mitigation arms to compare.
pub struct ScenarioMatrix {
    /// Scenario axes (rows).
    pub scenarios: Vec<Box<dyn Scenario>>,
    /// Decision policies driven through the engine (columns).
    pub policies: Vec<PolicyKind>,
    /// Mitigation arms compared per cell.
    pub arms: Vec<Mitigations>,
    /// Shared scale knobs.
    pub cfg: MatrixConfig,
}

impl ScenarioMatrix {
    /// The full suite: six scenario axes × all three policies ×
    /// unmitigated vs. mitigated.
    pub fn standard(cfg: MatrixConfig) -> Self {
        ScenarioMatrix {
            scenarios: standard_scenarios(),
            policies: vec![
                PolicyKind::FixedMajority,
                PolicyKind::ConfidenceWeighted,
                PolicyKind::AdaptiveThreshold,
            ],
            arms: vec![Mitigations::off(), Mitigations::on()],
            cfg,
        }
    }

    /// The CI smoke grid: 2 scenarios × 2 policies × both arms, at
    /// small generation/training scale.
    pub fn tiny() -> Self {
        ScenarioMatrix {
            scenarios: tiny_scenarios(),
            policies: vec![PolicyKind::FixedMajority, PolicyKind::AdaptiveThreshold],
            arms: vec![Mitigations::off(), Mitigations::on()],
            cfg: MatrixConfig {
                num_modules: 2,
                train_snapshots: 10,
                serve_snapshots: 12,
                epochs: 4,
                seed: 7,
            },
        }
    }

    /// Runs the whole grid and returns the scored report.
    pub fn run(&self) -> MatrixReport {
        let spec = input_spec();
        let base = samples(
            &SegmentSpec::train().dataset(self.cfg.num_modules, self.cfg.train_snapshots),
            &spec,
        );
        let split = holdout_split(&base);

        // One model per augmentation arm, shared across every scenario
        // and policy so cells differ only in the axis under test.
        let mut nets: HashMap<bool, Network> = HashMap::new();
        for arm in &self.arms {
            if nets.contains_key(&arm.augmentation) {
                continue;
            }
            let exp = ExperimentConfig {
                model: ModelConfig::demo(self.cfg.num_modules as usize),
                train: TrainConfig {
                    epochs: self.cfg.epochs,
                    batch_size: 32,
                    learning_rate: 2e-3,
                    seed: self.cfg.seed,
                    ..TrainConfig::default()
                },
            };
            let result = if arm.augmentation {
                let mut provider =
                    |epoch: usize| Some(augmented_epoch(epoch, &self.cfg, &spec, &split.train));
                run_experiment_with_provider(&exp, &split, &mut provider)
            } else {
                run_experiment(&exp, &split)
            };
            nets.insert(arm.augmentation, result.network);
        }

        let registry = self.registry();
        let roles = self.roles();

        let mut accuracies = Vec::new();
        let mut cells = Vec::new();
        for scenario in &self.scenarios {
            let segments: Vec<_> = scenario
                .segments()
                .iter()
                .map(|s| s.dataset(self.cfg.num_modules, self.cfg.serve_snapshots))
                .collect();

            let mut eval = LabeledSamples::default();
            for ds in &segments {
                eval.extend(samples(ds, &spec));
            }
            let mut scored_arms: Vec<bool> = nets.keys().copied().collect();
            scored_arms.sort_unstable();
            for augmentation in scored_arms {
                let (top1, _) = evaluate(&nets[&augmentation], &eval.x, &eval.y);
                accuracies.push(ScenarioAccuracy {
                    scenario: scenario.name(),
                    augmentation,
                    top1,
                });
            }

            for &policy in &self.policies {
                for arm in &self.arms {
                    let engine = Engine::start(
                        EngineConfig {
                            workers: 2,
                            backpressure: Backpressure::Block,
                            decision: DecisionPolicyConfig {
                                kind: policy,
                                per_position: arm.per_position,
                                ..DecisionPolicyConfig::default()
                            },
                            ..EngineConfig::default()
                        },
                        Authenticator::new(nets[&arm.augmentation].clone(), input_spec()),
                        registry.clone(),
                    );
                    for ds in &segments {
                        let replay = ReplaySource::from_dataset(ds);
                        for frame in replay.frames() {
                            engine.ingest_frame(frame);
                        }
                    }
                    let report = engine.shutdown();

                    let mut genuine_accepts = 0usize;
                    let mut impostor_rejects = 0usize;
                    for d in &report.decisions {
                        match roles.get(&d.source).copied() {
                            Some(1) if d.verdict == Verdict::Accept => genuine_accepts += 1,
                            Some(2) if d.verdict != Verdict::Accept => impostor_rejects += 1,
                            _ => {}
                        }
                    }
                    let n = self.cfg.num_modules as f64;
                    cells.push(CellResult {
                        scenario: scenario.name(),
                        policy,
                        mitigations: *arm,
                        genuine_accept_rate: genuine_accepts as f64 / n,
                        impostor_reject_rate: impostor_rejects as f64 / n,
                        reports_to_verdict_p50: report.stats.reports_to_verdict_p50,
                    });
                }
            }
        }
        MatrixReport { accuracies, cells }
    }

    /// The registry every cell serves against: genuine streams under
    /// their true module, impostor streams claiming the next module.
    fn registry(&self) -> DeviceRegistry {
        let mut registry = DeviceRegistry::new();
        for m in 0..self.cfg.num_modules {
            registry.register(stream_mac(DeviceId(m), 1), DeviceId(m));
            registry.register(
                stream_mac(DeviceId(m), 2),
                DeviceId((m + 1) % self.cfg.num_modules),
            );
        }
        registry
    }

    /// Source address → beamformee role (1 = genuine, 2 = impostor).
    fn roles(&self) -> HashMap<MacAddr, u8> {
        let mut roles = HashMap::new();
        for m in 0..self.cfg.num_modules {
            roles.insert(stream_mac(DeviceId(m), 1), 1);
            roles.insert(stream_mac(DeviceId(m), 2), 2);
        }
        roles
    }
}

/// The source MAC [`ReplaySource`] synthesizes for a (module,
/// beamformee) stream — must stay in sync with the replay encoder
/// (pinned by a test against [`ReplaySource::registry`]).
pub fn stream_mac(module: DeviceId, beamformee: u8) -> MacAddr {
    MacAddr::station(u64::from(module.0) << 8 | u64::from(beamformee))
}

/// The DNN input assembly every matrix model uses (stride-4 sub-band
/// selection, as the serving benches).
pub fn input_spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

/// Deterministic 80/20 holdout: every 5th sample validates (and doubles
/// as the held-out test set).
fn holdout_split(all: &LabeledSamples) -> Split {
    let mut train = LabeledSamples::default();
    let mut val = LabeledSamples::default();
    for (i, (x, y)) in all.x.iter().zip(&all.y).enumerate() {
        if i % 5 == 4 {
            val.push(x.clone(), *y);
        } else {
            train.push(x.clone(), *y);
        }
    }
    Split {
        train,
        val: val.clone(),
        test: val,
    }
}

/// One epoch of the DeepCRF-style augmentation: the base training set
/// plus a fresh capture under an epoch-dependent channel re-draw
/// (room, position, mobility, SNR, phase noise, and drift all cycle).
fn augmented_epoch(
    epoch: usize,
    cfg: &MatrixConfig,
    spec: &InputSpec,
    base: &LabeledSamples,
) -> LabeledSamples {
    // One re-draw per epoch, cycling a small set of rooms at moderate
    // SNRs, with drift offsets folded in. Deliberately *not* a harsh
    // sweep: what buys channel invariance here is room diversity, and
    // flooding a small epoch budget with low-SNR captures trades too
    // much clean-condition accuracy for it.
    const ENVS: [u64; 4] = [0, 7, 3, 5];
    const SNRS: [f64; 3] = [25.0, 15.0, 10.0];
    let seg = SegmentSpec {
        env_id: ENVS[epoch % ENVS.len()],
        mobility: epoch % 4 == 3,
        snr_db: Some(SNRS[epoch % SNRS.len()]),
        drift_day: (epoch as u32 % 3) * 15,
        drift_scale: if epoch.is_multiple_of(3) { 0.0 } else { 0.3 },
        ..SegmentSpec::train()
    };
    let mut out = base.clone();
    out.extend(samples(
        &seg.dataset(cfg.num_modules, cfg.train_snapshots),
        spec,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_macs_match_the_replay_encoder() {
        let ds = SegmentSpec::train().dataset(2, 1);
        let replay_registry = ReplaySource::registry(&ds);
        for t in &ds.traces {
            assert_eq!(
                replay_registry.expected(stream_mac(t.module, t.beamformee)),
                Some(t.module),
                "stream_mac diverged from the replay encoder for {}/{}",
                t.module,
                t.beamformee
            );
        }
    }

    #[test]
    fn arm_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            Mitigations::off(),
            Mitigations::on(),
            Mitigations {
                augmentation: true,
                per_position: false,
            },
            Mitigations {
                augmentation: false,
                per_position: true,
            },
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn augmented_epochs_redraw_the_channel() {
        let cfg = MatrixConfig {
            num_modules: 2,
            train_snapshots: 2,
            ..MatrixConfig::default()
        };
        let spec = input_spec();
        let base = LabeledSamples::default();
        let a = augmented_epoch(0, &cfg, &spec, &base);
        let b = augmented_epoch(1, &cfg, &spec, &base);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b, "consecutive epochs must see different channels");
        // And re-running the same epoch is deterministic.
        assert_eq!(a, augmented_epoch(0, &cfg, &spec, &base));
    }

    #[test]
    fn floor_and_never_worse_logic() {
        let report = MatrixReport {
            accuracies: vec![
                ScenarioAccuracy {
                    scenario: "a",
                    augmentation: false,
                    top1: 0.4,
                },
                ScenarioAccuracy {
                    scenario: "b",
                    augmentation: false,
                    top1: 0.9,
                },
                ScenarioAccuracy {
                    scenario: "a",
                    augmentation: true,
                    top1: 0.8,
                },
                ScenarioAccuracy {
                    scenario: "b",
                    augmentation: true,
                    top1: 0.95,
                },
            ],
            cells: Vec::new(),
        };
        assert_eq!(report.accuracy_floor(false), Some(0.4));
        assert_eq!(report.accuracy_floor(true), Some(0.8));
        assert!(report.mitigation_never_worse());
    }

    // An end-to-end micro run: one scenario, one policy, one arm.
    // Scenario-matrix breadth is exercised by `scenario_bench --tiny`
    // in CI; this pins the plumbing (train → engine → scored cells).
    #[test]
    fn micro_matrix_runs_end_to_end() {
        let matrix = ScenarioMatrix {
            scenarios: vec![Box::new(crate::scenarios::CrossPosition)],
            policies: vec![PolicyKind::FixedMajority],
            arms: vec![Mitigations::off()],
            cfg: MatrixConfig {
                num_modules: 2,
                train_snapshots: 8,
                serve_snapshots: 8,
                epochs: 2,
                seed: 7,
            },
        };
        let report = matrix.run();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.accuracies.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.scenario, "cross_position");
        assert!((0.0..=1.0).contains(&cell.genuine_accept_rate));
        assert!((0.0..=1.0).contains(&cell.impostor_reject_rate));
        let acc = &report.accuracies[0];
        assert!((0.0..=1.0).contains(&acc.top1));
        assert_eq!(report.accuracy_floor(true), None);
        assert!(report.mitigation_never_worse());
    }
}
