//! Quickstart: the full DeepCSI loop on a small synthetic testbed.
//!
//! 1. Simulate a data-collection campaign (4 AP modules, Fig. 6 room).
//! 2. Train the classifier on the S1 split.
//! 3. Deploy it as an [`Authenticator`] and identify the transmitter from
//!    raw captured frame bytes — the Fig. 1 "real-time inference" box.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig};
use deepcsi::data::{d1_split, generate_trace, D1Set, GenConfig, TraceKind, TraceSpec};
use deepcsi::frame::{BeamformingReportFrame, MacAddr};
use deepcsi::impair::DeviceId;

fn main() {
    // --- 1. Collect a dataset ------------------------------------------------
    let gen = GenConfig {
        num_modules: 4,
        snapshots_per_trace: 60,
        ..GenConfig::default()
    };
    println!(
        "generating D1 ({} modules × 9 positions × 2 beamformees)…",
        gen.num_modules
    );
    let dataset = deepcsi::data::generate_d1(&gen);
    println!(
        "  {} traces, {} soundings",
        dataset.traces.len(),
        dataset.num_snapshots()
    );

    // --- 2. Train ------------------------------------------------------------
    let spec = deepcsi::data::InputSpec::fast();
    let split = d1_split(&dataset, D1Set::S1, &[1], &spec);
    println!(
        "training on {} samples (validation {}, test {})…",
        split.train.len(),
        split.val.len(),
        split.test.len()
    );
    let cfg = ExperimentConfig::fast(gen.num_modules as usize, 42);
    let result = run_experiment(&cfg, &split);
    println!("test accuracy: {:.2}%", result.accuracy * 100.0);
    println!("{}", result.confusion);

    // --- 3. Deploy and authenticate raw captures ------------------------------
    let auth = Authenticator::new(result.network, spec);
    println!("\nauthenticating fresh over-the-air captures:");
    for module in 0..gen.num_modules {
        // A fresh trace from this module, captured as raw frame bytes.
        let trace = generate_trace(
            &gen,
            &TraceSpec {
                module: DeviceId(module),
                beamformee: 1,
                n_rx: 2,
                rx_position: 5,
                kind: TraceKind::D1Static { position: 5 },
            },
        );
        let frame = BeamformingReportFrame::new(
            MacAddr::station(1000),
            MacAddr::station(1),
            MacAddr::station(1000),
            1,
            trace.snapshots[0].clone(),
        );
        let bytes = frame.encode(); // what the monitor sniffs
        match auth.classify_frame(&bytes) {
            Ok((source, id)) => println!(
                "  frame from beamformee {source}: actual module {module}, identified as module {id} {}",
                if id == module as usize { "✓" } else { "✗" }
            ),
            Err(e) => println!("  capture failed to decode: {e}"),
        }
    }
}
