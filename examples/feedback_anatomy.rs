//! Anatomy of a compressed beamforming feedback: walks one sounding
//! through every stage of §III — CFR → V → Givens angles → quantization →
//! frame bytes → parse → Ṽ — printing what each stage produces.
//!
//! A good first read to understand what the classifier actually sees.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example feedback_anatomy
//! ```

use deepcsi::bfi::{beamforming_matrix, decompose, quantize, v_from_angles, BeamformingFeedback};
use deepcsi::channel::{AntennaArray, ChannelModel, Environment};
use deepcsi::frame::{BeamformingReportFrame, MacAddr};
use deepcsi::impair::{
    apply_impairments, DeviceId, ImpairmentProfile, LinkState, RadioFingerprint,
};
use deepcsi::phy::{Codebook, MimoConfig, SubcarrierLayout};
use rand::SeedableRng;

fn main() {
    // --- the link -------------------------------------------------------
    let env = Environment::fig6(0);
    let layout = SubcarrierLayout::vht80();
    let tones = layout.indices().to_vec();
    println!(
        "channel {}: K = {} sounded sub-channels",
        env.channel,
        layout.len()
    );

    let model = ChannelModel::new(&env, layout);
    let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
    let rx = AntennaArray::new(env.beamformee1_position(1), 0.0, env.half_wavelength(), 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- 1. the beamformee estimates Ĥ from the NDP ----------------------
    let profile = ImpairmentProfile::default();
    let tx_fp = RadioFingerprint::generate(DeviceId(0), 3, &profile);
    let rx_fp = RadioFingerprint::generate_rx(1, 2, &profile);
    let mut link = LinkState::new(&tx_fp, 1);
    let ideal = model.cfr(&tx, &rx, &mut rng);
    let cfr = apply_impairments(&ideal, &tones, &tx_fp, &rx_fp, &profile, &mut link);
    let k_mid = 117; // a mid-band tone
    println!(
        "\nstep 1 — estimated CFR at tone {} (M×N = 3×2):",
        tones[k_mid]
    );
    println!("{:?}", cfr[k_mid]);

    // --- 2. V_k via SVD (Eq. (3)) ----------------------------------------
    let v = beamforming_matrix(&cfr[k_mid], 2);
    println!("step 2 — beamforming matrix V_k (first 2 right singular vectors):");
    println!("{v:?}");

    // --- 3. Algorithm 1: Givens angles -----------------------------------
    let dec = decompose(&v);
    println!("step 3 — feedback angles (φ in [0,2π), ψ in [0,π/2]):");
    println!(
        "  φ = {:?}",
        dec.angles
            .phi
            .iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
    );
    println!(
        "  ψ = {:?}",
        dec.angles
            .psi
            .iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
    );

    // --- 4. quantization (Eq. (8)) ----------------------------------------
    let cb = Codebook::MU_HIGH;
    let q = quantize(&dec.angles, cb);
    println!(
        "step 4 — quantized with {cb}: qφ = {:?}, qψ = {:?}",
        q.q_phi, q.q_psi
    );

    // --- 5. the frame on the air ------------------------------------------
    let mimo = MimoConfig::paper_default();
    let fb = BeamformingFeedback::from_cfr(&cfr, &tones, mimo, cb);
    let frame = BeamformingReportFrame::new(
        MacAddr::station(99),
        MacAddr::station(1),
        MacAddr::station(99),
        42,
        fb,
    );
    let bytes = frame.encode();
    println!(
        "step 5 — VHT Compressed Beamforming frame: {} bytes ({} tones × {} angle bits + headers)",
        bytes.len(),
        tones.len(),
        cb.bits_per_subcarrier(mimo.num_angle_pairs()),
    );
    println!("  first 32 bytes: {:02x?}", &bytes[..32]);

    // --- 6. the observer parses and rebuilds Ṽ (Eq. (7)) ------------------
    let parsed = BeamformingReportFrame::parse(&bytes).expect("parse own frame");
    println!(
        "step 6 — parsed: source {}, {} sub-channels, codebook {}",
        parsed.source(),
        parsed.feedback().len(),
        parsed.feedback().codebook,
    );
    let series = parsed.feedback().reconstruct();
    println!("  reconstructed Ṽ at tone {}:", tones[k_mid]);
    println!("{:?}", series.v[k_mid]);
    let exact = v_from_angles(&dec.angles, 3, 2);
    println!(
        "  ‖Ṽ_quantized − Ṽ_exact‖∞ = {:.2e} (the Fig. 13 quantization error)",
        exact.max_abs_diff(&series.v[k_mid])
    );
}
