//! Mobility scenario: authenticate an AP that is being carried through
//! the room (the paper's D2 / Fig. 17 story).
//!
//! Trains once on the mobility traces (group mob1) and then authenticates
//! the device continuously as it re-walks the A-B-C-D-B-A path,
//! reporting a running majority vote — the way a deployed verifier would
//! smooth per-sounding decisions.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example mobility_authentication
//! ```

use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig};
use deepcsi::data::{
    d2_split, generate_d2, generate_trace, D2Set, GenConfig, InputSpec, TraceKind, TraceSpec,
};
use deepcsi::impair::DeviceId;

fn main() {
    let gen = GenConfig {
        num_modules: 5,
        snapshots_per_trace: 80,
        ..GenConfig::default()
    };
    println!("generating D2 mobility dataset…");
    let dataset = generate_d2(&gen);

    let spec = InputSpec::fast();
    let split = d2_split(&dataset, D2Set::S4, &[1], &spec);
    println!(
        "training on mob1 ({} samples), testing on mob2 ({} samples)…",
        split.train.len() + split.val.len(),
        split.test.len()
    );
    let result = run_experiment(
        &ExperimentConfig::fast(gen.num_modules as usize, 11),
        &split,
    );
    println!(
        "mobility accuracy (Fig. 17a analogue): {:.2}%\n",
        result.accuracy * 100.0
    );

    // Continuous authentication of a *new* walk of module 3.
    let auth = Authenticator::new(result.network, spec);
    let target = DeviceId(3);
    let walk = generate_trace(
        &gen,
        &TraceSpec {
            module: target,
            beamformee: 1,
            n_rx: 1,
            rx_position: 3,
            kind: TraceKind::D2Mobility { group: 2, idx: 9 }, // unseen trace
        },
    );
    println!("authenticating module {target} along a fresh walk:");
    let mut votes = vec![0usize; gen.num_modules as usize];
    let mut correct_so_far = 0usize;
    for (i, fb) in walk.snapshots.iter().enumerate() {
        let id = auth.classify_feedback(fb);
        votes[id] += 1;
        if id == target.0 as usize {
            correct_so_far += 1;
        }
        if (i + 1) % 16 == 0 {
            let leader = votes
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(c, _)| c)
                .expect("votes");
            println!(
                "  t={:>5.1}s  soundings {:>3}  per-sounding acc {:>5.1}%  majority → module {leader} {}",
                walk.timestamps[i],
                i + 1,
                100.0 * correct_so_far as f64 / (i + 1) as f64,
                if leader == target.0 as usize { "✓" } else { "✗" }
            );
        }
    }
}
