//! Spectrum-monitor scenario: the DSA enforcement use case that motivates
//! the paper's introduction.
//!
//! A spectrum administrator must verify *which unlicensed device is using
//! the band* without holding any cryptographic material. The monitor
//! passively captures VHT Compressed Beamforming frames from the
//! beamformees of several APs, identifies each AP at the PHY layer, and
//! flags transmitters whose claimed MAC address does not match their
//! radio fingerprint (MAC spoofing).
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example spectrum_monitor
//! ```

use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig};
use deepcsi::data::{
    d1_split, generate_d1, generate_trace, D1Set, GenConfig, InputSpec, TraceKind, TraceSpec,
};
use deepcsi::frame::{BeamformingReportFrame, MacAddr, Monitor};
use deepcsi::impair::DeviceId;

/// The MAC each legitimate AP module is expected to use.
fn registered_mac(module: u32) -> MacAddr {
    MacAddr::station(0x5000 + module as u64)
}

fn main() {
    // Enrollment: the administrator fingerprints the registered devices.
    let gen = GenConfig {
        num_modules: 5,
        snapshots_per_trace: 60,
        ..GenConfig::default()
    };
    println!("enrolling {} registered APs…", gen.num_modules);
    let dataset = generate_d1(&gen);
    let spec = InputSpec::fast();
    let split = d1_split(&dataset, D1Set::S1, &[1], &spec);
    let result = run_experiment(&ExperimentConfig::fast(gen.num_modules as usize, 3), &split);
    println!(
        "enrollment model accuracy: {:.2}%\n",
        result.accuracy * 100.0
    );
    let auth = Authenticator::new(result.network, spec);

    // Live monitoring: frames arrive with *claimed* beamformer MACs.
    let mut monitor = Monitor::new();
    // Module 2 behaves; module 4 spoofs module 1's registered MAC.
    let observed: &[(u32, MacAddr)] = &[
        (2, registered_mac(2)),
        (4, registered_mac(1)), // spoofer!
        (0, registered_mac(0)),
    ];
    println!("monitoring live captures:");
    for (seq, &(module, claimed)) in observed.iter().enumerate() {
        let trace = generate_trace(
            &gen,
            &TraceSpec {
                module: DeviceId(module),
                beamformee: 1,
                n_rx: 2,
                rx_position: 4,
                kind: TraceKind::D1Static { position: 4 },
            },
        );
        let bytes = BeamformingReportFrame::new(
            claimed, // Addr1: the beamformer the feedback is destined to
            MacAddr::station(1),
            claimed,
            seq as u16,
            trace.snapshots[0].clone(),
        )
        .encode();
        let report = monitor.observe(&bytes).expect("valid frame").clone();
        let identified = auth.classify_feedback(&report.feedback);
        let expected = registered_mac(identified as u32);
        let verdict = if expected == report.destination {
            "authentic"
        } else {
            "SPOOFING SUSPECTED"
        };
        println!(
            "  frame → claimed AP {}, RF fingerprint says module {} ({}): {}",
            report.destination, identified, expected, verdict
        );
    }
    println!(
        "\nmonitor stats: {} reports captured, {} undecodable frames",
        monitor.reports().len(),
        monitor.decode_errors()
    );
}
