//! Decision policies side by side: how fast each policy reaches a
//! verdict on a clean capture, and what happens when an impostor takes
//! over a stream presenting the right identity at the wrong confidence.
//!
//! 1. Simulate a capture campaign and train a fast classifier.
//! 2. Replay the same frame stream through three engines — fixed
//!    majority window, confidence-weighted early exit, adaptive
//!    per-device thresholds — and compare reports-to-verdict.
//! 3. Replay a degraded-channel continuation of the same streams and
//!    watch the adaptive policy flag what the fixed window accepts.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example decision_policies
//! ```

use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi::data::{d1_split, generate_d1, D1Set, GenConfig, InputSpec};
use deepcsi::impair::ImpairmentProfile;
use deepcsi::nn::TrainConfig;
use deepcsi::serve::{
    Backpressure, DecisionPolicyConfig, Engine, EngineConfig, EngineReport, PolicyKind,
    ReplaySource,
};

fn run_policy(
    kind: PolicyKind,
    auth: &Authenticator,
    registry: &deepcsi::serve::DeviceRegistry,
    frames: &[Vec<u8>],
) -> EngineReport {
    let engine = Engine::start(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            decision: DecisionPolicyConfig {
                kind,
                ..DecisionPolicyConfig::default()
            },
            ..EngineConfig::default()
        },
        auth.clone(),
        registry.clone(),
    );
    for frame in frames {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

fn main() {
    // --- 1. Dataset + classifier --------------------------------------------
    let gen = GenConfig {
        num_modules: 3,
        snapshots_per_trace: 40,
        ..GenConfig::default()
    };
    println!("generating D1 capture for {} AP modules…", gen.num_modules);
    let dataset = generate_d1(&gen);

    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let split = d1_split(&dataset, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(3),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    println!("training…");
    let result = run_experiment(&cfg, &split);
    println!("  per-sample test accuracy {:.1}%", result.accuracy * 100.0);
    let auth = Authenticator::new(result.network, spec);

    let replay = ReplaySource::from_dataset(&dataset);
    let registry = ReplaySource::registry(&dataset);
    let clean: Vec<Vec<u8>> = replay.frames().map(<[u8]>::to_vec).collect();

    // --- 2. Clean capture: who decides fastest? -----------------------------
    println!("\n== clean capture: reports-to-verdict per stream ==");
    println!(
        "{:<22} {:>8} {:>12} {:>10}",
        "stream", "policy", "verdict", "decided@"
    );
    let kinds = [
        PolicyKind::FixedMajority,
        PolicyKind::ConfidenceWeighted,
        PolicyKind::AdaptiveThreshold,
    ];
    let reports: Vec<EngineReport> = kinds
        .iter()
        .map(|&k| run_policy(k, &auth, &registry, &clean))
        .collect();
    for i in 0..reports[0].decisions.len() {
        for (kind, report) in kinds.iter().zip(&reports) {
            let d = &report.decisions[i];
            println!(
                "{:<22} {:>8} {:>12} {:>10}",
                d.source.to_string(),
                kind.to_string(),
                format!("{:?}", d.verdict),
                d.decided_at
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
    for (kind, report) in kinds.iter().zip(&reports) {
        println!(
            "{:>10}: reports-to-verdict p50 {:?}, p99 {:?}",
            kind.to_string(),
            report.stats.reports_to_verdict_p50,
            report.stats.reports_to_verdict_p99,
        );
    }

    // --- 3. Degraded takeover: right identity, wrong confidence -------------
    // The same campaign re-simulated through a much worse channel:
    // identical fingerprints and MACs, but 8 dB SNR and heavy phase
    // noise. Appended after the clean phase it models an impostor
    // replaying degraded captures of the genuine devices.
    println!("\n== degraded takeover after the clean phase ==");
    let degraded_ds = generate_d1(&GenConfig {
        profile: ImpairmentProfile {
            snr_db: 8.0,
            snr_jitter_db: 3.0,
            phase_noise_std_rad: 0.15,
            ..ImpairmentProfile::default()
        },
        ..gen
    });
    let mut handover = clean.clone();
    handover.extend(
        ReplaySource::from_dataset(&degraded_ds)
            .frames()
            .map(<[u8]>::to_vec),
    );

    println!(
        "{:<22} {:>8} {:>12} {:>6}",
        "stream", "policy", "verdict", "conf"
    );
    for kind in [PolicyKind::FixedMajority, PolicyKind::AdaptiveThreshold] {
        let report = run_policy(kind, &auth, &registry, &handover);
        for d in &report.decisions {
            println!(
                "{:<22} {:>8} {:>12} {:>6.2}",
                d.source.to_string(),
                kind.to_string(),
                format!("{:?}", d.verdict),
                d.decision.map(|w| w.confidence_ema).unwrap_or(f64::NAN),
            );
        }
    }
    println!(
        "\nThe fixed window judges only the majority module, so a stream \
         that keeps presenting\nthe right identity stays accepted no matter \
         how its confidence collapses. The\nadaptive policy calibrated each \
         stream's own confidence band during the clean\nphase — streams \
         whose smoothed confidence fell out of their band are flagged."
    );
}
