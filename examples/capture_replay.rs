//! Capture-file replay: the dataset → pcap → engine loop end to end.
//!
//! 1. Simulate a capture campaign and train a fast classifier.
//! 2. Export the synthetic capture as a real radiotap pcap — the file
//!    any monitor-mode sniffer (tcpdump, Wireshark) could have written.
//! 3. Serve the file through the engine via `PcapFileSource` and check
//!    the verdicts match the in-memory replay path exactly.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example capture_replay
//! ```

use deepcsi::capture::PcapFileSource;
use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi::data::{d1_split, D1Set, GenConfig, InputSpec};
use deepcsi::nn::TrainConfig;
use deepcsi::serve::{
    Backpressure, Engine, EngineConfig, EngineReport, ReplaySource, SourceStatus,
};

fn main() {
    // --- 1. Dataset + classifier --------------------------------------------
    let gen = GenConfig {
        num_modules: 3,
        snapshots_per_trace: 40,
        ..GenConfig::default()
    };
    println!("generating D1 capture for {} AP modules…", gen.num_modules);
    let dataset = deepcsi::data::generate_d1(&gen);

    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let split = d1_split(&dataset, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(3),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    println!("training…");
    let result = run_experiment(&cfg, &split);
    println!("  per-sample test accuracy {:.1}%", result.accuracy * 100.0);
    let auth = Authenticator::new(result.network, spec);

    // --- 2. Export the capture as a radiotap pcap ---------------------------
    let replay = ReplaySource::from_dataset(&dataset);
    let path = std::env::temp_dir().join(format!("deepcsi-replay-{}.pcap", std::process::id()));
    replay
        .write_pcap(std::fs::File::create(&path).expect("create pcap"))
        .expect("write pcap");
    println!(
        "exported {} frames to {} ({} container bytes)",
        replay.len(),
        path.display(),
        std::fs::metadata(&path).expect("stat pcap").len(),
    );

    // --- 3. Serve the file and compare with the in-memory path --------------
    let serve = |mut source: Box<dyn deepcsi::capture::FrameSource>| -> EngineReport {
        let engine = Engine::start(
            EngineConfig {
                workers: 2,
                backpressure: Backpressure::Block,
                ..EngineConfig::default()
            },
            auth.clone(),
            ReplaySource::registry(&dataset),
        );
        assert_eq!(
            engine.ingest_available(source.as_mut()).expect("source"),
            SourceStatus::End
        );
        engine.shutdown()
    };
    let from_file = serve(Box::new(PcapFileSource::open(&path).expect("open pcap")));
    let from_memory = serve(Box::new(replay.clone()));
    std::fs::remove_file(&path).ok();

    println!("\n--- verdicts from the pcap file ---");
    for d in &from_file.decisions {
        match &d.decision {
            Some(w) => println!(
                "{}  decided {}  votes {:>5.1}%  n {:>4}  {:?}",
                d.source,
                w.module,
                w.vote_fraction * 100.0,
                w.observations,
                d.verdict
            ),
            None => println!("{}  (no reports)  {:?}", d.source, d.verdict),
        }
    }

    println!("\n--- engine telemetry (pcap path) ---");
    println!("{}", from_file.stats);
    assert_eq!(
        from_file.decisions, from_memory.decisions,
        "file and in-memory replays must agree"
    );
    assert!(from_file.stats.capture_reconciles());
    println!("\npcap path and in-memory path produced identical per-device verdicts ✓");
}
