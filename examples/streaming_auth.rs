//! Streaming authentication: the `deepcsi-serve` engine end to end.
//!
//! 1. Simulate a capture campaign and train a fast classifier.
//! 2. Freeze the trained model once (`Authenticator::freeze`) and start
//!    the streaming engine on the shared snapshot: MAC-sharded workers,
//!    bounded queues, micro-batched inference over one
//!    `Arc<FrozenAuthenticator>` (no per-worker weight clone, two
//!    inference threads per micro-batch), per-device sliding-window
//!    verdicts.
//! 3. Replay the capture as a frame stream — plus one impersonation
//!    attempt and some over-the-air garbage — and read the verdicts.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example streaming_auth
//! ```

use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi::data::{d1_split, D1Set, GenConfig, InputSpec};
use deepcsi::frame::{BeamformingReportFrame, MacAddr};
use deepcsi::nn::TrainConfig;
use deepcsi::serve::{Backpressure, Engine, EngineConfig, ReplaySource, Verdict};
use std::sync::Arc;

fn main() {
    // --- 1. Dataset + classifier --------------------------------------------
    let gen = GenConfig {
        num_modules: 3,
        snapshots_per_trace: 40,
        ..GenConfig::default()
    };
    println!("generating D1 capture for {} AP modules…", gen.num_modules);
    let dataset = deepcsi::data::generate_d1(&gen);

    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let split = d1_split(&dataset, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(3),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    println!("training…");
    let result = run_experiment(&cfg, &split);
    println!("  per-sample test accuracy {:.1}%", result.accuracy * 100.0);
    let auth = Authenticator::new(result.network, spec);

    // --- 2. Freeze the model, start the engine -------------------------------
    // One immutable weight snapshot serves every worker (and any other
    // consumer holding the Arc) — the engine never clones weights. The
    // classifier itself stays available for more training.
    let frozen = Arc::new(auth.freeze());
    let registry = ReplaySource::registry(&dataset);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            // Split each worker's micro-batch across two inference
            // threads. The lane split is bit-exact, so this can change
            // throughput but never a verdict.
            infer_threads: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        Arc::clone(&frozen),
        registry.clone(),
    );

    // --- 3. Stream frames ----------------------------------------------------
    let replay = ReplaySource::from_dataset(&dataset);
    println!(
        "streaming {} frames from {} registered device streams…",
        replay.len(),
        registry.len()
    );
    for frame in replay.frames() {
        engine.ingest_frame(frame);
    }

    // An impersonation attempt: an unregistered station replays module 0's
    // feedback under its own MAC — the registry can only call it Unknown,
    // and registering it against the wrong module would Reject.
    let intruder = MacAddr::station(0xBAD);
    for fb in dataset.traces[0].snapshots.iter().take(30) {
        let bytes = BeamformingReportFrame::new(
            MacAddr::station(0xAC_CE55),
            intruder,
            MacAddr::station(0xAC_CE55),
            0,
            fb.clone(),
        )
        .encode();
        engine.ingest_frame(&bytes);
    }

    // Over-the-air noise that fails to decode.
    for _ in 0..5 {
        engine.ingest_frame(&[0x5A; 13]);
    }

    let report = engine.shutdown();

    // --- 4. Verdicts ----------------------------------------------------------
    println!("\nper-device verdicts:");
    for d in &report.decisions {
        let marker = match d.verdict {
            Verdict::Accept => "✓",
            Verdict::Reject => "✗",
            Verdict::Unknown => "?",
        };
        match &d.decision {
            Some(w) => println!(
                "  {marker} {}  module {}  votes {:.0}%  conf {:.2}  ({} reports)",
                d.source,
                w.module,
                w.vote_fraction * 100.0,
                w.confidence_ema,
                w.observations
            ),
            None => println!("  {marker} {}  (silent)", d.source),
        }
    }
    println!("\nengine telemetry:\n{}", report.stats);
}
