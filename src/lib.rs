//! # DeepCSI — MU-MIMO Wi-Fi radio fingerprinting from beamforming feedback
//!
//! A comprehensive Rust reproduction of *"DeepCSI: Rethinking Wi-Fi Radio
//! Fingerprinting Through MU-MIMO CSI Feedback Deep Learning"* (Meneghello,
//! Rossi, Restuccia — IEEE ICDCS 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `deepcsi-linalg` | complex numbers, matrices, Hermitian eig, SVD |
//! | [`phy`] | `deepcsi-phy` | 802.11ac channels, subcarrier layouts, codebooks |
//! | [`channel`] | `deepcsi-channel` | indoor multipath simulator (Fig. 6 geometry, mobility) |
//! | [`impair`] | `deepcsi-impair` | per-device RF impairments — the fingerprint source |
//! | [`bfi`] | `deepcsi-bfi` | SVD → Givens angles → quantization → Ṽ (Alg. 1, Eqs. 3–8) |
//! | [`frame`] | `deepcsi-frame` | VHT Compressed Beamforming frame codec + monitor |
//! | [`capture`] | `deepcsi-capture` | pcap/pcapng + radiotap ingestion: readers, writers, follow sources |
//! | [`nn`] | `deepcsi-nn` | from-scratch CNN/attention deep-learning substrate |
//! | [`data`] | `deepcsi-data` | synthetic D1/D2 datasets, S1–S6 splits, input tensors |
//! | [`core`] | `deepcsi-core` | the classifier, training harness, authenticator, baseline |
//! | [`serve`] | `deepcsi-serve` | streaming auth engine: sharded ingest, micro-batches, windowed verdicts |
//! | [`cluster`] | `deepcsi-cluster` | distributed serving tier: wire codec, TCP ingest, MAC-shard router |
//! | [`scenario`] | `deepcsi-scenario` | channel-resilience scenario matrix: train/serve condition grids + mitigations |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the full sniff→train→authenticate
//! loop, or run:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use deepcsi_bfi as bfi;
pub use deepcsi_capture as capture;
pub use deepcsi_channel as channel;
pub use deepcsi_cluster as cluster;
pub use deepcsi_core as core;
pub use deepcsi_data as data;
pub use deepcsi_frame as frame;
pub use deepcsi_impair as impair;
pub use deepcsi_linalg as linalg;
pub use deepcsi_nn as nn;
pub use deepcsi_phy as phy;
pub use deepcsi_scenario as scenario;
pub use deepcsi_serve as serve;
