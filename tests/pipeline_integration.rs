//! Integration tests spanning the whole workspace: channel → impairments
//! → feedback → frames → tensors → classifier.

use deepcsi::bfi::VSeries;
use deepcsi::core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi::data::{d1_split, generate_trace, D1Set, GenConfig, InputSpec, TraceKind, TraceSpec};
use deepcsi::frame::{BeamformingReportFrame, MacAddr, Monitor};
use deepcsi::impair::DeviceId;
use deepcsi::nn::TrainConfig;
use deepcsi::phy::{MimoConfig, SubcarrierLayout};

fn tiny_gen(modules: u32, snapshots: usize) -> GenConfig {
    GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    }
}

fn spec_for_test() -> InputSpec {
    InputSpec {
        stride: 4, // narrow inputs keep the test fast
        ..InputSpec::default()
    }
}

/// The headline claim, end to end: hardware imperfections percolate into
/// the (quantized, frame-round-tripped) beamforming feedback strongly
/// enough that a small CNN identifies the transmitter.
#[test]
fn end_to_end_fingerprinting_works() {
    let mut gen = tiny_gen(3, 40);
    gen.via_frames = true; // exercise the codec inside the data path
    let ds = deepcsi::data::generate_d1(&gen);
    let split = d1_split(&ds, D1Set::S1, &[1], &spec_for_test());
    let cfg = ExperimentConfig {
        model: ModelConfig {
            conv_filters: vec![16, 16],
            conv_kernels: vec![7, 5],
            attention_kernel: 7,
            dense_units: vec![32],
            dropout_rates: vec![0.1],
            num_classes: 3,
            seed: 5,
        },
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&cfg, &split);
    assert!(
        result.accuracy > 0.85,
        "end-to-end S1 accuracy only {:.2}%",
        result.accuracy * 100.0
    );
}

/// Different devices must be distinguishable in Ṽ space *before* any
/// learning: after averaging out per-packet noise, the distance between
/// two devices' mean Ṽ exceeds the drift between disjoint time windows
/// of the same device.
#[test]
fn fingerprint_percolates_into_v_tilde() {
    let gen = tiny_gen(2, 480);
    let spec = |module| TraceSpec {
        module: DeviceId(module),
        beamformee: 1,
        n_rx: 2,
        rx_position: 3,
        kind: TraceKind::D1Static { position: 3 },
    };
    let t0 = generate_trace(&gen, &spec(0));
    let t1 = generate_trace(&gen, &spec(1));
    // Element-wise time average of the reconstructed Ṽ series.
    let mean_series = |snaps: &[deepcsi::bfi::BeamformingFeedback]| -> Vec<Vec<f64>> {
        let series: Vec<VSeries> = snaps.iter().map(|fb| fb.reconstruct()).collect();
        let n_sc = series[0].len();
        let mut acc = vec![vec![0.0f64; 12]; n_sc]; // 3×2 complex = 12 reals
        for s in &series {
            for (k, vk) in s.v.iter().enumerate() {
                for m in 0..3 {
                    for c in 0..2 {
                        acc[k][(m * 2 + c) * 2] += vk[(m, c)].re;
                        acc[k][(m * 2 + c) * 2 + 1] += vk[(m, c)].im;
                    }
                }
            }
        }
        let n = series.len() as f64;
        for row in acc.iter_mut() {
            for v in row.iter_mut() {
                *v /= n;
            }
        }
        acc
    };
    let dist = |a: &[Vec<f64>], b: &[Vec<f64>]| -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                x.iter()
                    .zip(y.iter())
                    .map(|(p, q)| (p - q) * (p - q))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum::<f64>()
    };
    let half = t0.snapshots.len() / 2;
    let within = dist(
        &mean_series(&t0.snapshots[..half]),
        &mean_series(&t0.snapshots[half..]),
    );
    let between = dist(&mean_series(&t0.snapshots), &mean_series(&t1.snapshots));
    assert!(
        between > 1.5 * within,
        "between-device distance {between:.4} not > within-device {within:.4}"
    );
}

/// The monitor workflow of §III-C: capture frames from two beamformees,
/// group by source address, feed one group to the authenticator.
#[test]
fn monitor_capture_to_classification() {
    let gen = tiny_gen(2, 10);
    let mut monitor = Monitor::new();
    for bf in [1u8, 2u8] {
        let trace = generate_trace(
            &gen,
            &TraceSpec {
                module: DeviceId(0),
                beamformee: bf,
                n_rx: 2,
                rx_position: 2,
                kind: TraceKind::D1Static { position: 2 },
            },
        );
        for (seq, fb) in trace.snapshots.iter().enumerate() {
            let bytes = BeamformingReportFrame::new(
                MacAddr::station(1000),
                MacAddr::station(bf as u64),
                MacAddr::station(1000),
                seq as u16,
                fb.clone(),
            )
            .encode();
            monitor.observe(&bytes).expect("valid frame");
        }
    }
    assert_eq!(monitor.sources().len(), 2);
    let from_bf1: Vec<_> = monitor.reports_from(MacAddr::station(1)).collect();
    assert_eq!(from_bf1.len(), 10);

    // An untrained model still runs the full classify path.
    let spec = spec_for_test();
    let probe = spec.tensor(&from_bf1[0].feedback);
    let shape: [usize; 3] = probe.shape().try_into().expect("rank 3");
    let model = ModelConfig::fast(2, 0);
    let auth = Authenticator::new(model.build((shape[0], shape[1], shape[2])), spec);
    for r in from_bf1 {
        let id = auth.classify_feedback(&r.feedback);
        assert!(id < 2);
    }
}

/// Dataset generation must be bit-reproducible across runs and differ
/// across environments (the paper's two rooms).
#[test]
fn dataset_determinism_and_environment_separation() {
    let gen = tiny_gen(1, 3);
    let a = deepcsi::data::generate_d1(&gen);
    let b = deepcsi::data::generate_d1(&gen);
    assert_eq!(a, b, "same config must reproduce identical datasets");
    let other_env = GenConfig {
        env_id: 1,
        ..gen.clone()
    };
    let c = deepcsi::data::generate_d1(&other_env);
    assert_ne!(a, c, "different rooms must yield different captures");
}

/// Feedback captured through the standard frame format must carry exactly
/// the same information as the direct path.
#[test]
fn frame_roundtrip_is_transparent_to_the_classifier() {
    let direct_cfg = tiny_gen(1, 4);
    let mut framed_cfg = tiny_gen(1, 4);
    framed_cfg.via_frames = true;
    let spec = TraceSpec {
        module: DeviceId(0),
        beamformee: 1,
        n_rx: 2,
        rx_position: 1,
        kind: TraceKind::D1Static { position: 1 },
    };
    let direct = generate_trace(&direct_cfg, &spec);
    let framed = generate_trace(&framed_cfg, &spec);
    let ispec = spec_for_test();
    for (a, b) in direct.snapshots.iter().zip(framed.snapshots.iter()) {
        let ta = ispec.tensor(a);
        let tb = ispec.tensor(b);
        assert_eq!(ta.as_slice(), tb.as_slice());
    }
}

/// The paper's PHY dimensioning invariants hold through the stack.
#[test]
fn phy_dimensions_flow_through() {
    let layout = SubcarrierLayout::vht80();
    assert_eq!(layout.len(), 234);
    let mimo = MimoConfig::paper_default();
    assert_eq!(mimo.num_angle_pairs(), 6);
    let gen = tiny_gen(1, 1);
    let trace = generate_trace(
        &gen,
        &TraceSpec {
            module: DeviceId(0),
            beamformee: 2,
            n_rx: 2,
            rx_position: 9,
            kind: TraceKind::D1Static { position: 9 },
        },
    );
    let fb = &trace.snapshots[0];
    assert_eq!(fb.len(), 234);
    assert_eq!(fb.angles[0].q_phi.len(), 3);
    assert_eq!(fb.angles[0].q_psi.len(), 3);
    // Tensor shape: 5 I/Q channels × 1 stream × 234 tones.
    let t = InputSpec::default().tensor(fb);
    assert_eq!(t.shape(), &[5, 1, 234]);
}
