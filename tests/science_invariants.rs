//! Scientific invariants the reproduction relies on — checked end to end
//! at small scale so regressions in any substrate surface here.

use deepcsi::bfi::{beamforming_matrix, decompose, v_from_angles, BeamformingFeedback, VSeries};
use deepcsi::channel::{AntennaArray, ChannelModel, Environment};
use deepcsi::data::clean_phase_offsets;
use deepcsi::impair::{
    apply_impairments, DeviceId, ImpairmentProfile, LinkState, RadioFingerprint,
};
use deepcsi::linalg::{CMatrix, C64};
use deepcsi::phy::{Codebook, MimoConfig, SubcarrierLayout};
use rand::SeedableRng;

fn small_cfr() -> (Vec<CMatrix>, Vec<i32>) {
    let env = Environment::fig6(0);
    let layout = SubcarrierLayout::vht20();
    let tones = layout.indices().to_vec();
    let model = ChannelModel::new(&env, layout);
    let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
    let rx = AntennaArray::new(env.beamformee1_position(2), 0.0, env.half_wavelength(), 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    (model.cfr(&tx, &rx, &mut rng), tones)
}

/// §II-A: Ṽ must be invariant to phases that are *common across TX
/// antennas* (CFO/PPO/SFO-like terms) — the reason the feedback is a
/// robust fingerprint carrier.
#[test]
fn v_tilde_cancels_common_phase_offsets() {
    let (cfr, _) = small_cfr();
    let h = &cfr[10];
    let v_ref = {
        let v = beamforming_matrix(h, 2);
        let d = decompose(&v);
        v_from_angles(&d.angles, 3, 2)
    };
    // Multiply the whole CFR matrix by an arbitrary unit phase.
    let rotated = h.scale(C64::cis(1.234));
    let v_rot = {
        let v = beamforming_matrix(&rotated, 2);
        let d = decompose(&v);
        v_from_angles(&d.angles, 3, 2)
    };
    assert!(
        v_ref.max_abs_diff(&v_rot) < 1e-9,
        "common phase leaked into Ṽ: {}",
        v_ref.max_abs_diff(&v_rot)
    );
}

/// §I / DESIGN.md §4: per-TX-chain phases DO percolate into Ṽ — remove
/// them and Ṽ changes. This is the fingerprint mechanism itself.
#[test]
fn v_tilde_exposes_per_chain_phases() {
    let (cfr, _) = small_cfr();
    let h = &cfr[10];
    let canonical = |m: &CMatrix| {
        let v = beamforming_matrix(m, 2);
        let d = decompose(&v);
        v_from_angles(&d.angles, 3, 2)
    };
    let v_ref = canonical(h);
    // Apply a chain-dependent phase (like a chain-delay mismatch would).
    let t = CMatrix::diag(&[C64::cis(0.3), C64::cis(-0.2), C64::cis(0.7)]);
    let v_imp = canonical(&t.matmul(h));
    assert!(
        v_ref.max_abs_diff(&v_imp) > 1e-3,
        "per-chain phases failed to percolate into Ṽ"
    );
}

/// Fig. 13's mechanism: with the coarse MU codebook the stream-2 column
/// reconstructs worse than stream-1, averaged over a real channel.
#[test]
fn quantization_error_grows_with_stream_order() {
    let (cfr, tones) = small_cfr();
    let mimo = MimoConfig::paper_default();
    let exact = VSeries::exact_from_cfr(&cfr, &tones, mimo);
    let quant = BeamformingFeedback::from_cfr(&cfr, &tones, mimo, Codebook::MU_LOW).reconstruct();
    let col_err = |c: usize| -> f64 {
        (0..3)
            .map(|m| quant.element_error(&exact, m, c))
            .sum::<f64>()
            / 3.0
    };
    assert!(
        col_err(1) > col_err(0),
        "stream-2 error {} not above stream-1 {}",
        col_err(1),
        col_err(0)
    );
}

/// The finer standard codebook must reconstruct Ṽ strictly better.
#[test]
fn finer_codebook_reduces_reconstruction_error() {
    let (cfr, tones) = small_cfr();
    let mimo = MimoConfig::paper_default();
    let exact = VSeries::exact_from_cfr(&cfr, &tones, mimo);
    let err = |cb: Codebook| -> f64 {
        let q = BeamformingFeedback::from_cfr(&cfr, &tones, mimo, cb).reconstruct();
        (0..3)
            .flat_map(|m| (0..2).map(move |s| (m, s)))
            .map(|(m, s)| q.element_error(&exact, m, s))
            .sum()
    };
    let coarse = err(Codebook::MU_LOW);
    let fine = err(Codebook::MU_HIGH);
    assert!(
        fine < coarse / 2.0,
        "(9,7) error {fine} not well below (7,5) error {coarse}"
    );
}

/// Fig. 16's mechanism: offset cleaning must measurably shrink the
/// between-device distance in Ṽ space (it removes fingerprint).
#[test]
fn cleaning_reduces_device_separation() {
    let (cfr, tones) = small_cfr();
    let profile = ImpairmentProfile::default();
    let rx = RadioFingerprint::generate_rx(1, 2, &profile);
    let mimo = MimoConfig::paper_default();
    let series_for = |module: u32, clean: bool| -> VSeries {
        let tx = RadioFingerprint::generate(DeviceId(module), 3, &profile);
        // Noise-free so the comparison isolates the fingerprint terms.
        let quiet = ImpairmentProfile {
            snr_db: 200.0,
            phase_noise_std_rad: 0.0,
            ..profile
        };
        let mut link = LinkState::new(&tx, 5);
        let impaired = apply_impairments(&cfr, &tones, &tx, &rx, &quiet, &mut link);
        let fb = BeamformingFeedback::from_cfr(&impaired, &tones, mimo, Codebook::MU_HIGH);
        let mut s = fb.reconstruct();
        if clean {
            clean_phase_offsets(&mut s);
        }
        s
    };
    let dist = |a: &VSeries, b: &VSeries| -> f64 {
        a.v.iter()
            .zip(b.v.iter())
            .map(|(x, y)| x.sub(y).fro_norm())
            .sum::<f64>()
    };
    let raw = dist(&series_for(0, false), &series_for(1, false));
    let cleaned = dist(&series_for(0, true), &series_for(1, true));
    assert!(
        cleaned < raw,
        "cleaning did not reduce device separation: raw {raw}, cleaned {cleaned}"
    );
}

/// Beam-pattern diversity: Ṽ must change measurably between beamformee
/// positions (what makes S2/S3 hard and training diversity valuable).
#[test]
fn v_tilde_depends_on_beamformee_position() {
    let env = Environment::fig6(0);
    let layout = SubcarrierLayout::vht20();
    let tones = layout.indices().to_vec();
    let model = ChannelModel::new(&env, layout.clone());
    let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
    let mimo = MimoConfig::paper_default();
    let series_at = |pos: usize| -> VSeries {
        let rx = AntennaArray::new(env.beamformee1_position(pos), 0.0, env.half_wavelength(), 2);
        let cfr = model.cfr_with_scatterers(&tx, &rx, &env.scatterers);
        VSeries::exact_from_cfr(&cfr, &tones, mimo)
    };
    let a = series_at(1);
    let b = series_at(9);
    let d: f64 =
        a.v.iter()
            .zip(b.v.iter())
            .map(|(x, y)| x.sub(y).fro_norm())
            .sum::<f64>()
            / a.len() as f64;
    assert!(d > 0.05, "position change barely moved Ṽ: {d}");
}
